"""Tests for the runtime invariant auditor.

Covers the tap plumbing (install stack, no-op default, zero state when
disabled), every law the auditor enforces, and — most importantly — a
demonstration that the auditor *catches* each of the three accounting
bugs this PR fixed, by re-introducing the legacy behaviour through
deliberately broken subclasses/fixtures.
"""

import pytest

from repro.errors import InvariantViolation, SimulationError
from repro.obs.metrics import Metrics
from repro.simnet.audit import (
    NOOP_TAP,
    AuditTap,
    InvariantAuditor,
    active_tap,
    audited,
    install,
    uninstall,
)
from repro.simnet.buffer import SharedBuffer
from repro.simnet.engine import Engine
from repro.simnet.nic import Nic
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.switch import ToRSwitch
from repro.config import BufferConfig


def data_packet(dst, size=1500, ecn_capable=True, **kwargs) -> Packet:
    return Packet(
        src="sender",
        dst=dst,
        size=size,
        payload=size - 40,
        flow=FlowKey("sender", dst, 1, 2),
        ecn_capable=ecn_capable,
        **kwargs,
    )


def tight_buffer(**overrides) -> BufferConfig:
    defaults = dict(
        shared_bytes=4000,
        dedicated_bytes_per_queue=0.0,
        alpha=1.0,
        ecn_threshold_bytes=100,
    )
    defaults.update(overrides)
    return BufferConfig(**defaults)


class TestTapPlumbing:
    def test_default_tap_is_noop(self):
        assert active_tap() is NOOP_TAP

    def test_install_uninstall_stack(self):
        auditor = InvariantAuditor()
        install(auditor)
        try:
            assert active_tap() is auditor
        finally:
            uninstall(auditor)
        assert active_tap() is NOOP_TAP

    def test_unbalanced_uninstall_rejected(self):
        with pytest.raises(InvariantViolation):
            uninstall(InvariantAuditor())

    def test_components_capture_tap_at_construction(self):
        with audited() as auditor:
            engine = Engine()
        # Built inside the scope: audited even after the scope closes.
        engine.at(1.0, lambda: None)
        engine.run()
        assert auditor.events > 0

    def test_components_outside_scope_not_audited(self):
        engine = Engine()  # built with the no-op tap
        with audited() as auditor:
            engine.at(1.0, lambda: None)
            engine.run()
        assert auditor.events == 0

    def test_audited_verifies_on_clean_exit(self):
        class Failing(InvariantAuditor):
            def verify(self):
                raise AssertionError("verify ran")

        with pytest.raises(AssertionError, match="verify ran"):
            with audited(Failing()):
                pass

    def test_audited_skips_verify_when_body_raises(self):
        class Failing(InvariantAuditor):
            def verify(self):
                raise AssertionError("verify ran")

        with pytest.raises(ValueError, match="body error"):
            with audited(Failing()):
                raise ValueError("body error")
        assert active_tap() is NOOP_TAP

    def test_noop_tap_has_all_hooks(self):
        """Every hook the auditor implements exists on the no-op base
        (components call through AuditTap, so a missing base method
        would only surface at runtime with auditing off)."""
        base_hooks = {name for name in dir(AuditTap) if name.startswith("on_")}
        auditor_hooks = {
            name
            for name in vars(InvariantAuditor)
            if name.startswith("on_")
        }
        assert auditor_hooks <= base_hooks


class TestEngineLaws:
    def test_clean_run_no_violations(self):
        with audited() as auditor:
            engine = Engine()
            engine.at(1.0, lambda: engine.after(0.5, lambda: None))
            engine.run()
        assert auditor.violations == []

    def test_time_rewind_caught(self):
        """A component that rewinds engine time (the class of bug the
        monotonicity law exists for) is caught at the next scheduling."""
        with audited():
            engine = Engine()
        engine.at(5.0, lambda: None)
        engine.run()
        engine._now = 0.0  # simulate a buggy component rewinding time
        with pytest.raises(InvariantViolation, match="no-past-scheduling"):
            engine.at(1.0, lambda: None)

    def test_advance_below_high_water_caught(self):
        with audited() as auditor:
            engine = Engine()
        engine.at(1.0, lambda: None)  # legitimately scheduled
        # Another engine (or a buggy wall-clock bridge) pushed the
        # audited high-water mark past the pending event.
        auditor._engine_shadow(engine).high_water_time = 10.0
        with pytest.raises(InvariantViolation, match="monotonic-time"):
            engine.run()


class TestBufferLaws:
    def make(self, **overrides) -> SharedBuffer:
        return SharedBuffer(tight_buffer(**overrides))

    def test_clean_admit_release_cycle(self):
        with audited() as auditor:
            buffer = self.make(dedicated_bytes_per_queue=100.0)
            buffer.register_queue("q0")
            admissions = [buffer.admit("q0", 150) for _ in range(5)]
            for admission in admissions:
                buffer.release("q0", admission)
        assert auditor.violations == []
        assert auditor.checks > 0

    def test_silent_double_release_caught(self):
        """Releasing the same admission twice while other packets keep
        the counters positive corrupts occupancy *silently* — the buffer
        itself cannot tell; the auditor can (release-once law)."""
        with pytest.raises(InvariantViolation, match="release-once"):
            with audited():
                buffer = self.make()
                buffer.register_queue("q0")
                first = buffer.admit("q0", 100)
                buffer.admit("q0", 100)  # keeps counters positive
                buffer.release("q0", first)
                buffer.release("q0", first)

    def test_release_on_wrong_queue_caught(self):
        with pytest.raises(InvariantViolation, match="release-once"):
            with audited():
                buffer = self.make()
                buffer.register_queue("q0")
                buffer.register_queue("q1")
                admission = buffer.admit("q0", 100)
                buffer.admit("q1", 100)
                buffer.release("q1", admission)

    def test_occupancy_tampering_caught(self):
        with pytest.raises(InvariantViolation, match="shared-occupancy-sync"):
            with audited():
                buffer = self.make()
                buffer.register_queue("q0")
                buffer.admit("q0", 100)
                buffer._shared_occupancy += 7  # counter drift
                buffer.admit("q0", 100)

    def test_reset_counters_mid_run_stays_consistent(self):
        with audited() as auditor:
            buffer = self.make()
            buffer.register_queue("q0")
            held = buffer.admit("q0", 200)
            buffer.admit("q0", 5000)  # discarded (over pool)
            buffer.reset_counters()
            # Occupancy survives the counter reset; new traffic accounts
            # from zero.
            assert buffer.queue_occupancy("q0") == 200
            buffer.admit("q0", 300)
            assert buffer.total_admitted_bytes() == 300
            buffer.release("q0", held)
        assert auditor.violations == []

    def test_verify_reconciles_outstanding_admissions(self):
        with audited() as auditor:
            buffer = self.make()
            buffer.register_queue("q0")
            buffer.admit("q0", 100)
        # Exit verify passed: 100 bytes outstanding == 100 occupancy.
        buffer._shared_occupancy = 0  # lose the in-flight bytes
        with pytest.raises(InvariantViolation, match="shared-occupancy-sync"):
            auditor.verify()


class TestSwitchLaws:
    def test_clean_forwarding(self):
        with audited() as auditor:
            engine = Engine()
            switch = ToRSwitch(engine, buffer_config=tight_buffer())
            switch.connect_server("s0", lambda p: None)
            for _ in range(20):
                switch.forward(data_packet("s0"))
            engine.run()
            auditor.verify()
        assert auditor.violations == []

    def test_counter_tampering_caught(self):
        with audited():
            engine = Engine()
            switch = ToRSwitch(engine, buffer_config=tight_buffer())
            switch.connect_server("s0", lambda p: None)
            switch.forward(data_packet("s0"))
            switch.counters.forwarded_bytes += 1
            with pytest.raises(InvariantViolation, match="forward-accounting"):
                switch.forward(data_packet("s0"))


class TestNicLaws:
    def test_segmentation_conserves_payload(self):
        with audited() as auditor:
            nic = Nic()
            packet = data_packet("s0", size=30_000)
            pieces = nic.segment(packet)
            merged = nic.coalesce(pieces)
        assert auditor.violations == []
        assert sum(p.payload for p in merged) == packet.payload

    def test_lossy_segmentation_caught(self):
        class LossyNic(Nic):
            def segment(self, packet):
                pieces = super().segment(packet)
                if len(pieces) > 1:
                    # Re-report with a dropped piece, as a buggy TSO
                    # implementation that loses a segment would.
                    self._audit.on_segment(self, packet, pieces[:-1])
                return pieces

        with audited():
            nic = LossyNic()
            with pytest.raises(InvariantViolation, match="segmentation-conservation"):
                nic.segment(data_packet("s0", size=30_000))


class TestMetricsIntegration:
    def test_violations_counted_immediately(self):
        metrics = Metrics()
        auditor = InvariantAuditor(metrics=metrics, raise_on_violation=False)
        with audited(auditor):
            buffer = SharedBuffer(tight_buffer())
            buffer.register_queue("q0")
            first = buffer.admit("q0", 100)
            buffer.admit("q0", 100)
            buffer.release("q0", first)
            buffer.release("q0", first)  # silent double release
        assert metrics.counters()["audit.violations"] >= 1
        assert len(auditor.violations) >= 1

    def test_event_and_check_totals_flushed_on_verify(self):
        metrics = Metrics()
        with audited(InvariantAuditor(metrics=metrics)):
            buffer = SharedBuffer(tight_buffer())
            buffer.register_queue("q0")
            buffer.release("q0", buffer.admit("q0", 100))
        counters = metrics.counters()
        assert counters["audit.events"] >= 2
        assert counters["audit.checks"] > counters["audit.events"]

    def test_structured_violation_fields(self):
        auditor = InvariantAuditor(raise_on_violation=False)
        with audited(auditor):
            buffer = SharedBuffer(tight_buffer())
            buffer.register_queue("q0")
            buffer._shared_occupancy = 13
            buffer.admit("q0", 100)
        violation = auditor.violations[0]
        assert violation.law == "buffer.shared-occupancy-sync"
        assert violation.component == "buffer"
        assert violation.observed != violation.expected
        assert "shared-occupancy-sync" in str(violation)


# -- the auditor catching each fixed bug, with the fix reverted ----------


class LegacyEcnSwitch(ToRSwitch):
    """Re-introduces the pre-fix ECN accounting: ``ecn_marked_bytes``
    incremented at mark time, before admission is known."""

    def _enqueue(self, server, packet):
        queue = self.queue_for(server)
        marked = False
        if (
            packet.ecn_capable
            and not packet.is_ack
            and queue.occupancy > self.buffer_config.ecn_threshold_bytes
        ):
            packet = packet.marked()
            marked = True
            self.counters.ecn_marked_bytes += packet.size  # the bug
        admitted = queue.enqueue(packet)
        if admitted:
            self.counters.forwarded_bytes += packet.size
        else:
            self.counters.discard_bytes += packet.size
            self.counters.discard_packets += 1
        self._audit.on_switch_enqueue(self, server, packet, admitted, marked)
        if not admitted and self.on_drop is not None:
            self.on_drop(packet, server)


class TestAuditorCatchesFixedBugs:
    def test_catches_legacy_ecn_marked_on_discard(self):
        """Satellite fix 2: a marked packet the buffer then rejects must
        not count toward ecn_marked_bytes.  With the legacy accounting
        re-introduced, the auditor flags the first marked-then-discarded
        packet."""
        config = tight_buffer(shared_bytes=3000, ecn_threshold_bytes=100)
        with audited():
            engine = Engine()
            switch = LegacyEcnSwitch(engine, buffer_config=config)
            # No drain: rate so slow the queue only fills.
            switch.connect_server("s0", lambda p: None, rate=1.0)
            with pytest.raises(InvariantViolation, match="ecn-accounting"):
                for _ in range(10):
                    switch.forward(data_packet("s0", size=1000))

    def test_fixed_switch_counts_marked_discards_correctly(self):
        """Same traffic through the fixed switch: zero violations, and
        marked bytes never exceed forwarded bytes."""
        config = tight_buffer(shared_bytes=3000, ecn_threshold_bytes=100)
        with audited() as auditor:
            engine = Engine()
            switch = ToRSwitch(engine, buffer_config=config)
            switch.connect_server("s0", lambda p: None, rate=1.0)
            for _ in range(10):
                switch.forward(data_packet("s0", size=1000))
        assert auditor.violations == []
        assert switch.counters.discard_packets > 0  # the scenario did discard
        assert switch.counters.ecn_marked_bytes <= switch.counters.forwarded_bytes

    def test_catches_legacy_engine_budget_off_by_one(self):
        """Satellite fix 1: draining exactly ``max_events`` events is not
        budget exhaustion.  The legacy loop raised anyway; the audited
        engine demonstrates the fixed semantics, and the legacy
        behaviour is what the regression in test_engine.py guards."""
        with audited() as auditor:
            engine = Engine()
            for index in range(5):
                engine.at(float(index), lambda: None)
            engine.run(max_events=5)  # exactly the heap size: must finish
        assert auditor.violations == []
        assert engine.events_run == 5

    def test_catches_legacy_sync_run_selection(self):
        """Satellite fix 3: the legacy ``min(candidates)`` selection
        returns the *periodic* run that started just inside the skew
        tolerance; the fixed selection returns the sync run.  Shown on
        the same store contents."""
        import numpy as np

        from tests.conftest import make_run
        from tests.core.test_syncsampler import make_host

        host = make_host("h0")
        sync_start = 1.0
        tolerance = 50e-3
        periodic_start = sync_start - 0.03  # inside the tolerance window
        sync_run_start = sync_start + 0.0002  # host clock slightly late
        host.store.store(make_run(np.ones(10), host="h0", start_time=periodic_start))
        host.store.store(make_run(np.full(10, 2.0), host="h0", start_time=sync_run_start))

        candidates = [
            start
            for start in host.store.start_times()
            if start >= sync_start - tolerance
        ]
        legacy_choice = min(candidates)
        fixed_choice = min(candidates, key=lambda s: (abs(s - sync_start), s))
        assert legacy_choice == periodic_start  # the bug: wrong run
        assert fixed_choice == sync_run_start


class TestDisabledOverhead:
    def test_disabled_components_share_the_noop_singleton(self):
        engine = Engine()
        buffer = SharedBuffer(tight_buffer())
        nic = Nic()
        assert engine._audit is NOOP_TAP
        assert buffer._audit is NOOP_TAP
        assert nic._audit is NOOP_TAP

    def test_auditor_keeps_no_state_for_noop_runs(self):
        auditor = InvariantAuditor()
        engine = Engine()  # no-op tap
        engine.at(1.0, lambda: None)
        engine.run()
        assert auditor.events == 0
        assert auditor.checks == 0


class TestDoubleReleaseUnderflowStillRaises:
    def test_buffer_guards_underflow_without_auditor(self):
        """The buffer's own (weaker) double-release guard still works
        when auditing is off: underflow raises SimulationError."""
        buffer = SharedBuffer(tight_buffer())
        buffer.register_queue("q0")
        admission = buffer.admit("q0", 100)
        buffer.release("q0", admission)
        with pytest.raises(SimulationError):
            buffer.release("q0", admission)
