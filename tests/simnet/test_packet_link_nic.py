"""Tests for packets, links, and NIC segmentation offload."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simnet.engine import Engine
from repro.simnet.link import Link
from repro.simnet.nic import HEADER_BYTES, Nic
from repro.simnet.packet import FlowKey, Packet


def make_packet(size=1500, payload=None, **kwargs) -> Packet:
    flow = kwargs.pop("flow", FlowKey("a", "b", 1, 2))
    payload = size - HEADER_BYTES if payload is None else payload
    return Packet(src="a", dst="b", size=size, payload=payload, flow=flow, **kwargs)


class TestPacket:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(SimulationError):
            Packet(src="a", dst="b", size=0, flow=FlowKey("a", "b"))
        with pytest.raises(SimulationError):
            Packet(src="a", dst="b", size=10, payload=20, flow=FlowKey("a", "b"))

    def test_marked_copy_sets_ce(self):
        packet = make_packet()
        marked = packet.marked()
        assert marked.ecn_ce and not packet.ecn_ce
        assert marked.packet_id == packet.packet_id

    def test_multicast_copy_gets_new_id(self):
        packet = make_packet(multicast_group="g")
        replica = packet.copy_for("c")
        assert replica.dst == "c"
        assert replica.packet_id != packet.packet_id

    def test_flow_key_reverse(self):
        flow = FlowKey("a", "b", 10, 20)
        assert flow.reversed() == FlowKey("b", "a", 20, 10)
        assert flow.reversed().reversed() == flow

    def test_end_seq(self):
        packet = make_packet(size=140, payload=100)
        assert packet.end_seq == packet.seq + 100


class TestLink:
    def test_serialization_plus_propagation(self):
        engine = Engine()
        link = Link(engine, rate=1000.0, propagation_delay=0.5)
        arrivals = []
        link.transmit(make_packet(size=100), lambda p: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [pytest.approx(0.1 + 0.5)]

    def test_fifo_queueing(self):
        engine = Engine()
        link = Link(engine, rate=1000.0, propagation_delay=0.0)
        arrivals = []
        link.transmit(make_packet(size=100), lambda p: arrivals.append(engine.now))
        link.transmit(make_packet(size=100), lambda p: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_queueing_delay_reported(self):
        engine = Engine()
        link = Link(engine, rate=1000.0)
        link.transmit(make_packet(size=500), lambda p: None)
        assert link.queueing_delay() == pytest.approx(0.5)

    def test_counters(self):
        engine = Engine()
        link = Link(engine, rate=1e6)
        link.transmit(make_packet(size=100), lambda p: None)
        link.transmit(make_packet(size=200), lambda p: None)
        assert link.transmitted_packets == 2
        assert link.transmitted_bytes == 300

    def test_invalid_rate_rejected(self):
        with pytest.raises(SimulationError):
            Link(Engine(), rate=0)


class TestNic:
    def test_small_packet_untouched(self):
        nic = Nic()
        packet = make_packet(size=1000)
        assert nic.segment(packet) == [packet]

    def test_segmentation_splits_payload(self):
        nic = Nic(mtu=1500)
        packet = make_packet(size=16 * 1024, payload=16 * 1024 - HEADER_BYTES)
        pieces = nic.segment(packet)
        assert len(pieces) > 1
        assert all(piece.size <= 1500 for piece in pieces)
        assert sum(piece.payload for piece in pieces) == packet.payload

    def test_segmentation_preserves_sequence_space(self):
        nic = Nic()
        packet = make_packet(size=8000, payload=8000 - HEADER_BYTES)
        pieces = nic.segment(packet)
        seq = packet.seq
        for piece in pieces:
            assert piece.seq == seq
            seq = piece.end_seq
        assert seq == packet.end_seq

    def test_segmentation_copies_flags(self):
        nic = Nic()
        packet = make_packet(size=8000, payload=7960, ecn_ce=True, retransmit=True)
        for piece in nic.segment(packet):
            assert piece.ecn_ce and piece.retransmit

    def test_oversized_segment_rejected(self):
        nic = Nic()
        with pytest.raises(SimulationError):
            nic.segment(make_packet(size=100 * 1024, payload=100 * 1024 - 40))

    def test_coalesce_merges_contiguous(self):
        nic = Nic()
        flow = FlowKey("a", "b", 1, 2)
        first = Packet("a", "b", size=1040, payload=1000, seq=0, flow=flow)
        second = Packet("a", "b", size=1040, payload=1000, seq=1000, flow=flow)
        merged = nic.coalesce([first, second])
        assert len(merged) == 1
        assert merged[0].payload == 2000

    def test_coalesce_respects_ce_boundary(self):
        """CE-marked packets never merge with unmarked ones — the mark
        must survive reassembly (Section 4.6)."""
        nic = Nic()
        flow = FlowKey("a", "b", 1, 2)
        first = Packet("a", "b", size=1040, payload=1000, seq=0, flow=flow)
        second = Packet(
            "a", "b", size=1040, payload=1000, seq=1000, flow=flow, ecn_ce=True
        )
        assert len(nic.coalesce([first, second])) == 2

    def test_coalesce_does_not_merge_gaps(self):
        nic = Nic()
        flow = FlowKey("a", "b", 1, 2)
        first = Packet("a", "b", size=1040, payload=1000, seq=0, flow=flow)
        third = Packet("a", "b", size=1040, payload=1000, seq=2000, flow=flow)
        assert len(nic.coalesce([first, third])) == 2

    def test_coalesce_caps_at_gso_max(self):
        nic = Nic(gso_max=3000)
        flow = FlowKey("a", "b", 1, 2)
        packets = [
            Packet("a", "b", size=1040, payload=1000, seq=i * 1000, flow=flow)
            for i in range(5)
        ]
        merged = nic.coalesce(packets)
        assert all(packet.size <= 3000 for packet in merged)
        assert sum(packet.payload for packet in merged) == 5000

    @given(payload=st.integers(1, 64 * 1024 - HEADER_BYTES))
    @settings(max_examples=50)
    def test_segment_coalesce_roundtrip_preserves_payload(self, payload):
        nic = Nic()
        packet = make_packet(size=payload + HEADER_BYTES, payload=payload)
        pieces = nic.segment(packet)
        merged = nic.coalesce(pieces)
        assert sum(piece.payload for piece in merged) == payload
