"""SharedBuffer under every registered sharing policy.

The packet-level buffer must accept any policy the registry can build,
stay within the auditor's conservation laws under all of them, produce
rejection reasons that name the active policy and its computed limit,
and — under the default policy — behave bit-identically to the classic
hard-coded dynamic threshold.
"""

import numpy as np
import pytest

from repro.config import BufferConfig, PolicySpec
from repro.fleet.policies import (
    DynamicThresholdPolicy,
    StaticPartitionPolicy,
    build_policy,
    registered_policy_specs,
)
from repro.simnet.audit import audited
from repro.simnet.buffer import SharedBuffer

ALL_SPECS = registered_policy_specs()

CONFIG = BufferConfig(
    shared_bytes=1000,
    dedicated_bytes_per_queue=0.0,
    alpha=1.0,
    ecn_threshold_bytes=100,
)


def drive(buffer: SharedBuffer, queues: int = 4, rng_seed: int = 3) -> None:
    """A deterministic mixed workload: admits, releases, ticks, resets."""
    rng = np.random.default_rng(rng_seed)
    names = [f"q{i}" for i in range(queues)]
    for name in names:
        buffer.register_queue(name)
    held: dict[str, list] = {name: [] for name in names}
    for step in range(400):
        name = names[int(rng.integers(queues))]
        op = int(rng.integers(10))
        if op < 6:
            admission = buffer.admit(name, int(rng.integers(1, 400)))
            if admission.accepted:
                held[name].append(admission)
        elif op < 8 and held[name]:
            buffer.release(name, held[name].pop(0))
        elif op == 8:
            buffer.tick()
        else:
            buffer.reset_counters()
    for name, admissions in held.items():
        for admission in admissions:
            buffer.release(name, admission)


class TestBufferUnderEveryPolicy:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_audit_clean_under_policy(self, spec):
        policy = build_policy(spec, queues_per_quadrant=4)
        with audited() as auditor:
            buffer = SharedBuffer(CONFIG, policy=policy)
            drive(buffer)
            assert buffer.shared_occupancy == 0
        assert auditor.violations == []
        assert auditor.events > 0

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_policy_limit_matches_policy_kernel(self, spec):
        policy = build_policy(spec, queues_per_quadrant=4)
        buffer = SharedBuffer(CONFIG, policy=policy)
        buffer.register_queue("q0")
        buffer.register_queue("q1")
        buffer.admit("q0", 300)
        expected = policy.limits(
            1000.0, np.array([300.0]), np.array([0]), np.array([0.0]), np.array([0.0])
        )[0]
        assert buffer.policy_limit("q1") == expected


class TestRejectionReasons:
    def test_reason_names_policy_and_limit(self):
        policy = StaticPartitionPolicy(queues_per_quadrant=4)
        buffer = SharedBuffer(CONFIG, policy=policy)
        buffer.register_queue("q0")
        rejected = buffer.admit("q0", 600)  # slice is 1000/4 = 250
        assert not rejected.accepted
        assert rejected.reason == "over static-partition limit (250B)"

    def test_default_reason_names_dynamic_threshold(self):
        buffer = SharedBuffer(CONFIG)
        buffer.register_queue("q0")
        buffer.register_queue("q1")
        buffer.admit("q0", 800)  # pool at 800 -> DT limit 200
        rejected = buffer.admit("q1", 500)
        assert not rejected.accepted
        assert rejected.reason == "over dynamic-threshold limit (200B)"

    def test_pool_exhaustion_reason_unchanged(self):
        buffer = SharedBuffer(CONFIG, policy=build_policy(PolicySpec("complete-sharing")))
        buffer.register_queue("q0")
        buffer.register_queue("q1")
        assert buffer.admit("q0", 900).accepted
        # q1 is within its (complete-sharing) limit; only 100 B remain.
        rejected = buffer.admit("q1", 200)
        assert rejected.reason == "shared pool exhausted"


class TestDefaultEquivalence:
    def test_default_policy_is_dt_at_config_alpha(self):
        buffer = SharedBuffer(BufferConfig(alpha=2.5))
        assert isinstance(buffer.policy, DynamicThresholdPolicy)
        assert buffer.policy.alpha == 2.5

    def test_policy_limit_equals_threshold_under_default(self):
        buffer = SharedBuffer(CONFIG)
        buffer.register_queue("q0")
        for size in (100, 250, 90):
            buffer.admit("q0", size)
            assert buffer.policy_limit("q0") == buffer.threshold()

    def test_default_trace_identical_to_explicit_dt(self):
        """The pluggable path with an explicit DT policy reproduces the
        default buffer's admissions decision-for-decision."""
        default = SharedBuffer(CONFIG)
        explicit = SharedBuffer(CONFIG, policy=DynamicThresholdPolicy(alpha=CONFIG.alpha))
        rng = np.random.default_rng(11)
        for buffer in (default, explicit):
            buffer.register_queue("q0")
            buffer.register_queue("q1")
        for _ in range(200):
            name = f"q{int(rng.integers(2))}"
            size = int(rng.integers(1, 300))
            first = default.admit(name, size)
            second = explicit.admit(name, size)
            assert first == second
        assert default.shared_occupancy == explicit.shared_occupancy
