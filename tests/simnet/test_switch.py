"""Tests for the ToR switch: forwarding, ECN, multicast, quadrants."""

import pytest

from repro import units
from repro.config import BufferConfig
from repro.errors import SimulationError
from repro.simnet.engine import Engine
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.switch import ToRSwitch


def make_switch(engine=None, **buffer_kwargs):
    engine = engine or Engine()
    config = BufferConfig(**buffer_kwargs) if buffer_kwargs else None
    return engine, ToRSwitch(engine, buffer_config=config)


def data_packet(dst, size=1500, ecn_capable=True, **kwargs) -> Packet:
    return Packet(
        src="sender",
        dst=dst,
        size=size,
        payload=size - 40,
        flow=FlowKey("sender", dst, 1, 2),
        ecn_capable=ecn_capable,
        **kwargs,
    )


class TestForwarding:
    def test_unicast_delivery(self):
        engine, switch = make_switch()
        received = []
        switch.connect_server("s0", received.append, rate=units.gbps(12.5))
        switch.forward(data_packet("s0"))
        engine.run()
        assert len(received) == 1
        assert switch.counters.forwarded_bytes == 1500

    def test_unknown_destination_rejected(self):
        engine, switch = make_switch()
        with pytest.raises(SimulationError):
            switch.forward(data_packet("ghost"))

    def test_duplicate_server_rejected(self):
        engine, switch = make_switch()
        switch.connect_server("s0", lambda p: None)
        with pytest.raises(SimulationError):
            switch.connect_server("s0", lambda p: None)

    def test_servers_stripe_across_quadrants(self):
        engine, switch = make_switch()
        for i in range(8):
            switch.connect_server(f"s{i}", lambda p: None)
        quadrants = {switch.quadrant_for(f"s{i}") for i in range(8)}
        assert len(quadrants) == units.NUM_QUADRANTS

    def test_drain_rate_paces_delivery(self):
        engine, switch = make_switch()
        times = []
        switch.connect_server(
            "s0", lambda p: times.append(engine.now), rate=1500.0, propagation_delay=0.0
        )
        switch.forward(data_packet("s0", size=1500))
        switch.forward(data_packet("s0", size=1500))
        engine.run()
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]


class TestEcnMarking:
    def test_marks_when_queue_over_threshold(self):
        engine, switch = make_switch(ecn_threshold_bytes=1000)
        received = []
        # Slow drain so the queue builds.
        switch.connect_server("s0", received.append, rate=100.0)
        for _ in range(5):
            switch.forward(data_packet("s0", size=1500))
        engine.run(max_events=1000)
        assert any(packet.ecn_ce for packet in received)
        # The first packet saw an empty queue: unmarked.
        assert not received[0].ecn_ce

    def test_non_ect_never_marked(self):
        engine, switch = make_switch(ecn_threshold_bytes=10)
        received = []
        switch.connect_server("s0", received.append, rate=100.0)
        for _ in range(5):
            switch.forward(data_packet("s0", ecn_capable=False))
        engine.run(max_events=1000)
        assert not any(packet.ecn_ce for packet in received)

    def test_marked_then_discarded_packet_not_counted(self):
        """Regression: ``ecn_marked_bytes`` must count only marked
        packets the buffer actually admitted.  With the queue over the
        ECN threshold *and* the buffer full, every further packet is
        marked and then discarded — none of those bytes may land in the
        marked counter (pre-fix they all did, inflating the Figure 17
        ECN/discard correlation)."""
        engine, switch = make_switch(
            shared_bytes=3000, dedicated_bytes_per_queue=0, alpha=1.0,
            ecn_threshold_bytes=100,
        )
        switch.connect_server("s0", lambda p: None, rate=1.0)  # no real drain
        marked_before_full = None
        for _ in range(10):
            switch.forward(data_packet("s0", size=1000))
            if switch.counters.discard_packets == 0:
                marked_before_full = switch.counters.ecn_marked_bytes
        assert switch.counters.discard_packets > 0
        # Every discarded packet was over-threshold (hence marked); the
        # counter must not have moved since the buffer filled.
        assert switch.counters.ecn_marked_bytes == marked_before_full
        assert switch.counters.ecn_marked_bytes <= switch.counters.forwarded_bytes

    def test_acks_not_marked(self):
        engine, switch = make_switch(ecn_threshold_bytes=10)
        received = []
        switch.connect_server("s0", received.append, rate=100.0)
        for _ in range(3):
            switch.forward(data_packet("s0"))
        ack = Packet(
            src="sender", dst="s0", size=64, flow=FlowKey("sender", "s0"), is_ack=True
        )
        switch.forward(ack)
        engine.run(max_events=1000)
        acks = [packet for packet in received if packet.is_ack]
        assert acks and not acks[0].ecn_ce


class TestDiscards:
    def test_overflow_discards_counted(self):
        engine, switch = make_switch(
            shared_bytes=5000, dedicated_bytes_per_queue=0, alpha=1.0
        )
        dropped = []
        switch.on_drop = lambda packet, server: dropped.append(server)
        switch.connect_server("s0", lambda p: None, rate=10.0)  # barely drains
        for _ in range(10):
            switch.forward(data_packet("s0", size=1500))
        assert switch.counters.discard_packets > 0
        assert dropped and all(server == "s0" for server in dropped)
        assert (
            switch.counters.forwarded_bytes + switch.counters.discard_bytes
            == switch.counters.ingress_bytes
        )


class TestMulticast:
    def test_replication_to_members(self):
        engine, switch = make_switch()
        received = {name: [] for name in ("s0", "s1", "s2")}
        for name in received:
            switch.connect_server(name, received[name].append)
        for name in ("s0", "s1"):
            switch.join_multicast("g", name)
        packet = data_packet("g", ecn_capable=False)
        packet = Packet(
            src="s2", dst="g", size=1000, flow=FlowKey("s2", "g"),
            multicast_group="g", ecn_capable=False,
        )
        switch.forward(packet)
        engine.run()
        assert len(received["s0"]) == 1
        assert len(received["s1"]) == 1
        assert len(received["s2"]) == 0  # not a member

    def test_sender_excluded_from_replication(self):
        engine, switch = make_switch()
        received = {name: [] for name in ("s0", "s1")}
        for name in received:
            switch.connect_server(name, received[name].append)
            switch.join_multicast("g", name)
        packet = Packet(
            src="s0", dst="g", size=1000, flow=FlowKey("s0", "g"), multicast_group="g"
        )
        switch.forward(packet)
        engine.run()
        assert len(received["s0"]) == 0
        assert len(received["s1"]) == 1

    def test_join_requires_connected_server(self):
        engine, switch = make_switch()
        with pytest.raises(SimulationError):
            switch.join_multicast("g", "ghost")

    def test_rate_limiting_drops_replicas(self):
        engine = Engine()
        switch = ToRSwitch(engine, multicast_rate=1000.0)  # 1 KB/s
        switch.connect_server("s0", lambda p: None)
        switch.join_multicast("g", "s0")
        for _ in range(100):
            switch.forward(
                Packet(src="x", dst="g", size=1000, flow=FlowKey("x", "g"),
                       multicast_group="g")
            )
        assert switch.counters.multicast_rate_drops > 0

    def test_leave_multicast(self):
        engine, switch = make_switch()
        switch.connect_server("s0", lambda p: None)
        switch.join_multicast("g", "s0")
        switch.leave_multicast("g", "s0")
        assert switch.multicast_members("g") == []


class TestTokenBucket:
    """Pins down `_TokenBucket` semantics at the simulation epoch —
    the audit taps rely on rate-drop accounting being exact from t=0."""

    def test_full_burst_available_at_time_zero(self):
        from repro.simnet.switch import _TokenBucket

        bucket = _TokenBucket(rate=1000.0, burst=500.0)
        assert bucket.allow(500, now=0.0)
        # The burst is spent; nothing has refilled at the same instant.
        assert not bucket.allow(1, now=0.0)

    def test_oversized_request_at_time_zero_rejected_without_spend(self):
        from repro.simnet.switch import _TokenBucket

        bucket = _TokenBucket(rate=1000.0, burst=500.0)
        assert not bucket.allow(501, now=0.0)
        # A rejected request spends nothing: the full burst remains.
        assert bucket.allow(500, now=0.0)

    def test_refill_accrues_from_time_zero(self):
        from repro.simnet.switch import _TokenBucket

        bucket = _TokenBucket(rate=1000.0, burst=500.0)
        assert bucket.allow(500, now=0.0)
        # 0.1 s at 1000 B/s refills exactly 100 tokens.
        assert bucket.allow(100, now=0.1)
        assert not bucket.allow(1, now=0.1)


class TestTelemetry:
    def test_snapshot_is_a_copy(self):
        engine, switch = make_switch()
        switch.connect_server("s0", lambda p: None)
        snapshot = switch.snapshot_counters()
        switch.forward(data_packet("s0"))
        assert snapshot.ingress_bytes == 0
        assert switch.counters.ingress_bytes == 1500

    def test_queue_occupancy_visible(self):
        engine, switch = make_switch()
        switch.connect_server("s0", lambda p: None, rate=1.0)
        switch.forward(data_packet("s0"))
        assert switch.queue_occupancy("s0") == 1500
