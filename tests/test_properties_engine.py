"""Property suite: random event schedules against the engine laws.

Time monotonicity and the exact-budget semantics of ``Engine.run`` hold
for arbitrary schedules, including events that schedule further events.
The exact-budget case is the regression for the off-by-one where
draining exactly ``max_events`` events raised "budget exhausted".
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simnet.audit import audited
from repro.simnet.engine import Engine

TIMES = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60
)


@given(times=TIMES)
@settings(max_examples=50)
def test_random_schedules_keep_time_monotone(times):
    with audited() as auditor:
        engine = Engine()
        executed = []
        for t in times:
            engine.at(t, lambda t=t: executed.append(t))
        engine.run()
    assert executed == sorted(times)
    assert auditor.violations == []


@given(times=TIMES, fanout=st.integers(0, 3))
@settings(max_examples=30)
def test_events_scheduling_events_stay_monotone(times, fanout):
    """Events that schedule follow-ups never move time backwards and
    never place an event in the past."""
    with audited() as auditor:
        engine = Engine()

        def chain(depth: int) -> None:
            if depth > 0:
                engine.after(0.25, lambda: chain(depth - 1))

        for t in times:
            engine.at(t, lambda: chain(fanout))
        engine.run()
    assert auditor.violations == []
    assert engine.events_run == len(times) * (1 + fanout)


@given(n=st.integers(1, 50))
@settings(max_examples=30)
def test_exact_budget_is_not_exhaustion(n):
    """Regression (satellite fix 1): draining exactly ``max_events``
    events completes; a budget one short of the heap raises."""
    engine = Engine()
    for index in range(n):
        engine.at(float(index), lambda: None)
    engine.run(max_events=n)  # exactly enough: must not raise
    assert engine.events_run == n
    assert engine.pending == 0

    refill = Engine()
    for index in range(n + 1):
        refill.at(float(index), lambda: None)
    with pytest.raises(SimulationError, match="budget exhausted"):
        refill.run(max_events=n)


@given(
    n=st.integers(1, 30),
    end=st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
)
@settings(max_examples=30)
def test_run_until_budget_matches_due_events(n, end):
    """``run_until`` raises only when a *due* event remains past the
    budget — the same exact-budget semantics as ``run``."""
    engine = Engine()
    for index in range(n):
        engine.at(float(index), lambda: None)
    due = min(n, int(end) + 1)
    engine.run_until(end, max_events=due)  # exactly the due events
    assert engine.events_run == due
    assert engine.now == max(end, float(due - 1))
