"""Tests for the service catalog and placement policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.workload.placement import (
    ColocatedPlacementPolicy,
    RackPlacement,
    SpreadPlacementPolicy,
)
from repro.workload.services import SERVICE_CATALOG, ServiceSpec, service_by_name


class TestServiceCatalog:
    def test_catalog_nonempty_and_unique(self):
        names = [spec.name for spec in SERVICE_CATALOG]
        assert len(names) == len(set(names))
        assert len(names) >= 8

    def test_lookup(self):
        assert service_by_name("ml_trainer").name == "ml_trainer"
        with pytest.raises(ConfigError):
            service_by_name("nope")

    def test_ml_trainer_is_persistent_and_dense(self):
        """The properties the RegA-High mechanism depends on."""
        ml = service_by_name("ml_trainer")
        others = [spec for spec in SERVICE_CATALOG if spec.name != "ml_trainer"]
        assert ml.sender_persistence >= 10.0
        assert ml.active_probability > max(o.active_probability for o in others)
        assert ml.burst_rate > np.median([o.burst_rate for o in others])

    def test_request_response_services_have_fresh_senders(self):
        for name in ("web", "cache", "api", "search", "pubsub"):
            assert service_by_name(name).sender_persistence < 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceSpec(
                name="bad", burst_rate=-1, burst_volume_log_mu=0,
                burst_volume_log_sigma=1, burst_intensity_mean=0.5,
                burst_intensity_std=0.1, baseline_utilization=0.1,
                base_connections=1, burst_connections=1,
            )
        with pytest.raises(ConfigError):
            ServiceSpec(
                name="bad", burst_rate=1, burst_volume_log_mu=0,
                burst_volume_log_sigma=1, burst_intensity_mean=0.5,
                burst_intensity_std=0.1, baseline_utilization=1.5,
                base_connections=1, burst_connections=1,
            )


class TestRackPlacement:
    def test_distinct_and_dominant(self):
        spec = service_by_name("web")
        placement = RackPlacement(
            "r0", ("a", "a", "a", "b"), (spec, spec, spec, spec)
        )
        assert placement.distinct_tasks() == 2
        assert placement.dominant_task() == "a"
        assert placement.dominant_share() == 0.75

    def test_alignment_required(self):
        spec = service_by_name("web")
        with pytest.raises(ConfigError):
            RackPlacement("r0", ("a",), (spec, spec))


class TestSpreadPolicy:
    def test_covers_all_servers(self, rng):
        placement = SpreadPlacementPolicy().place("r0", 92, rng)
        assert placement.servers == 92

    def test_distinct_tasks_near_mean(self, rng):
        policy = SpreadPlacementPolicy(mean_distinct_tasks=14.0)
        counts = [policy.place(f"r{i}", 92, rng).distinct_tasks() for i in range(40)]
        assert 11 <= np.median(counts) <= 17

    def test_dominant_share_moderate(self, rng):
        """Paper Figure 11: typical racks' dominant task covers ~25%."""
        policy = SpreadPlacementPolicy()
        shares = [policy.place(f"r{i}", 92, rng).dominant_share() for i in range(40)]
        assert 0.12 <= np.median(shares) <= 0.45

    def test_service_weights_respected(self, rng):
        policy = SpreadPlacementPolicy(service_weights={"ml_trainer": 0.0})
        for i in range(10):
            placement = policy.place(f"r{i}", 50, rng)
            assert all(spec.name != "ml_trainer" for spec in placement.services)

    def test_small_rack(self, rng):
        placement = SpreadPlacementPolicy().place("r0", 2, rng)
        assert placement.servers == 2

    @given(servers=st.integers(2, 120), seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_every_task_has_at_least_one_server(self, servers, seed):
        rng = np.random.default_rng(seed)
        placement = SpreadPlacementPolicy().place("r", servers, rng)
        assert placement.servers == servers
        # Realized distinct tasks never exceeds the server count.
        assert 1 <= placement.distinct_tasks() <= servers


class TestColocatedPolicy:
    def test_dominant_share_in_band(self, rng):
        """Paper: 60-100% of servers run the one ML task."""
        policy = ColocatedPlacementPolicy()
        shares = [policy.place(f"r{i}", 92, rng).dominant_share() for i in range(30)]
        assert all(0.55 <= share <= 1.0 for share in shares)

    def test_same_dominant_task_across_racks(self, rng):
        """Section 7.1: 'the top task in each of the RegA-High racks was
        the same (a machine learning task)'."""
        policy = ColocatedPlacementPolicy()
        dominants = {
            policy.place(f"r{i}", 92, rng).dominant_task() for i in range(10)
        }
        assert len(dominants) == 1
        assert dominants.pop().startswith("ml_trainer")

    def test_few_distinct_tasks(self, rng):
        policy = ColocatedPlacementPolicy()
        counts = [policy.place(f"r{i}", 92, rng).distinct_tasks() for i in range(30)]
        assert np.median(counts) <= 12

    def test_invalid_share_bounds(self):
        with pytest.raises(ConfigError):
            ColocatedPlacementPolicy(dominant_share_low=0.9, dominant_share_high=0.5)
