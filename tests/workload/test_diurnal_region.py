"""Tests for diurnal profiles and region composition."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.diurnal import (
    DiurnalProfile,
    EVENING_PEAK_PROFILE,
    FLAT_PROFILE,
    MORNING_PEAK_PROFILE,
)
from repro.workload.region import REGION_A, REGION_B, RegionSpec, build_region_workloads
from repro.workload.placement import SpreadPlacementPolicy, ColocatedPlacementPolicy


class TestDiurnalProfile:
    def test_needs_24_hours(self):
        with pytest.raises(ConfigError):
            DiurnalProfile("bad", (1.0,) * 23)

    def test_positive_multipliers(self):
        with pytest.raises(ConfigError):
            DiurnalProfile("bad", (0.0,) + (1.0,) * 23)

    def test_flat_profile_constant(self):
        assert all(FLAT_PROFILE.at_hour(h) == 1.0 for h in range(24))

    def test_morning_profile_peaks_in_window(self):
        """The RegA pattern: peak between hours 4 and 10."""
        assert 4 <= MORNING_PEAK_PROFILE.busiest_hour() <= 10
        window_mean = np.mean([MORNING_PEAK_PROFILE.at_hour(h) for h in range(4, 11)])
        night_mean = np.mean([MORNING_PEAK_PROFILE.at_hour(h) for h in range(14, 24)])
        assert window_mean > 1.15 * night_mean

    def test_evening_profile_peaks_late(self):
        assert 16 <= EVENING_PEAK_PROFILE.busiest_hour() <= 22

    def test_hour_wraps(self):
        assert MORNING_PEAK_PROFILE.at_hour(25) == MORNING_PEAK_PROFILE.at_hour(1)

    def test_sensitivity_scaling(self):
        flat = MORNING_PEAK_PROFILE.scaled(0.0)
        assert all(m == pytest.approx(1.0) for m in flat.multipliers)
        full = MORNING_PEAK_PROFILE.scaled(1.0)
        assert full.multipliers == MORNING_PEAK_PROFILE.multipliers
        half = MORNING_PEAK_PROFILE.scaled(0.5)
        peak = MORNING_PEAK_PROFILE.busiest_hour()
        assert 1.0 < half.at_hour(peak) < MORNING_PEAK_PROFILE.at_hour(peak)


class TestRegionSpecs:
    def test_rega_has_colocated_fifth(self):
        assert REGION_A.colocated_fraction == pytest.approx(0.20)

    def test_regb_all_spread(self):
        assert REGION_B.colocated_fraction == 0.0

    def test_regb_runs_hotter(self):
        assert REGION_B.load_scale > REGION_A.load_scale

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            RegionSpec(
                name="bad",
                colocated_fraction=1.5,
                spread_policy=SpreadPlacementPolicy(),
                colocated_policy=ColocatedPlacementPolicy(),
                diurnal=FLAT_PROFILE,
            )


class TestBuildRegionWorkloads:
    def test_colocated_count(self, rng):
        workloads = build_region_workloads(REGION_A, racks=50, rng=rng)
        colocated = sum(1 for w in workloads if w.colocated)
        assert colocated == 10  # 20% of 50

    def test_rack_names_unique(self, rng):
        workloads = build_region_workloads(REGION_A, racks=30, rng=rng)
        names = [w.rack for w in workloads]
        assert len(names) == len(set(names))

    def test_colocated_racks_are_ml_dense(self, rng):
        workloads = build_region_workloads(REGION_A, racks=50, rng=rng)
        for workload in workloads:
            if workload.colocated:
                assert workload.placement.dominant_share() >= 0.55
                assert workload.placement.dominant_task().startswith("ml_trainer")

    def test_servers_per_rack_override(self, rng):
        workloads = build_region_workloads(REGION_A, racks=3, rng=rng, servers_per_rack=16)
        assert all(w.placement.servers == 16 for w in workloads)

    def test_zero_racks_empty_negative_rejected(self, rng):
        # Zero racks is a valid (empty) region; negatives are rejected.
        assert build_region_workloads(REGION_A, racks=0, rng=rng) == []
        with pytest.raises(ConfigError):
            build_region_workloads(REGION_A, racks=-1, rng=rng)
