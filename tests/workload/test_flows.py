"""Tests for the packet-level traffic applications."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.simnet.topology import build_rack
from repro.workload.flows import (
    BurstGeneratorClient,
    BurstServer,
    IncastApp,
    MulticastBurster,
)


class TestMulticastBurster:
    def test_periodic_bursts_reach_subscribers(self):
        rack = build_rack(servers=4)
        received = []
        rack.hosts[1].default_handler = received.append
        rack.switch.join_multicast("g", rack.hosts[1].name)
        burster = MulticastBurster(
            rack.hosts[0], "g", burst_bytes=32 * 1024, period=50e-3
        )
        burster.start()
        rack.engine.run_until(0.26)
        assert burster.bursts_sent >= 5
        assert len(received) > 0

    def test_stop_halts_bursts(self):
        rack = build_rack(servers=2)
        burster = MulticastBurster(rack.hosts[0], "g", period=10e-3)
        burster.start()
        rack.engine.run_until(0.015)
        burster.stop()
        sent = burster.bursts_sent
        rack.engine.run_until(0.1)
        assert burster.bursts_sent == sent

    def test_double_start_rejected(self):
        rack = build_rack(servers=2)
        burster = MulticastBurster(rack.hosts[0], "g")
        burster.start()
        with pytest.raises(SimulationError):
            burster.start()


class TestBurstServer:
    def test_burst_volume_delivered(self):
        rack = build_rack(servers=2)
        received_bytes = []
        rack.hosts[1].default_handler = lambda p: received_bytes.append(p.size)
        server = BurstServer(rack.hosts[0])
        server.transmit_burst(rack.hosts[1].name, volume=100_000)
        rack.engine.run()
        assert sum(received_bytes) == 100_000

    def test_paced_burst_duration(self):
        """A 1.8 MB burst at 12.5 Gbps should span ~1.2 ms on the wire."""
        rack = build_rack(servers=2)
        arrival_times = []
        rack.hosts[1].default_handler = lambda p: arrival_times.append(rack.engine.now)
        server = BurstServer(rack.hosts[0])
        server.transmit_burst(
            rack.hosts[1].name, volume=int(1.8 * units.MB), rate=units.SERVER_LINK_RATE
        )
        rack.engine.run()
        duration = max(arrival_times) - min(arrival_times)
        assert 0.8e-3 < duration < 2.0e-3

    def test_invalid_volume_rejected(self):
        rack = build_rack(servers=2)
        with pytest.raises(SimulationError):
            BurstServer(rack.hosts[0]).transmit_burst(rack.hosts[1].name, volume=0)


class TestBurstGeneratorClient:
    def test_requests_on_local_clock(self):
        rack = build_rack(servers=2, rng=np.random.default_rng(3))
        server = BurstServer(rack.hosts[0])
        client = BurstGeneratorClient(
            rack.hosts[1], server, burst_bytes=10_000, period=50e-3
        )
        client.start(first_request=0.01)
        rack.engine.run_until(0.3)
        assert client.requests_sent >= 5
        assert server.bursts_served >= 5


class TestIncastApp:
    def test_all_senders_complete(self):
        rack = build_rack(servers=6)
        results = []
        app = IncastApp(
            senders=rack.hosts[1:6],
            receiver=rack.hosts[0],
            bytes_per_sender=64 * 1024,
            on_complete=results.append,
        )
        app.start()
        rack.engine.run_until(2.0)
        assert results
        assert results[0].completed == 5
        assert results[0].finish_time is not None

    def test_needs_senders(self):
        rack = build_rack(servers=2)
        with pytest.raises(SimulationError):
            IncastApp(senders=[], receiver=rack.hosts[0])

    def test_deferred_start(self):
        rack = build_rack(servers=3)
        app = IncastApp(rack.hosts[1:3], rack.hosts[0], bytes_per_sender=10_000)
        app.start(at_time=0.5)
        rack.engine.run_until(0.4)
        assert app.result.completed == 0
        rack.engine.run_until(2.0)
        assert app.result.completed == 2
