"""Tests for the run-manifest schema, builder, and validator."""

import json

import pytest

from repro.config import FleetConfig
from repro.errors import ManifestError
from repro.experiments.orchestrator import ExperimentOutcome
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    validate_manifest,
    write_manifest,
)


def outcomes():
    return [
        ExperimentOutcome(
            experiment_id="fig1",
            status="ok",
            wall_time_s=0.25,
            peak_tracemalloc_bytes=1024,
            peak_rss_bytes=2048,
            cache_hits=1,
            metrics={"share": 0.5},
        ),
        ExperimentOutcome(
            experiment_id="fig9",
            status="failed",
            wall_time_s=0.01,
            error="AnalysisError: boom",
        ),
    ]


class TestBuildManifest:
    def test_schema_valid_and_failed_propagates(self):
        manifest = build_manifest(
            FleetConfig(racks_per_region=3, runs_per_rack=2, seed=7),
            outcomes(),
            telemetry={"counters": {}, "timers": {}},
            cache_dir="/tmp/cache",
            exp_jobs=4,
        )
        validate_manifest(manifest)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["status"] == "failed"
        assert manifest["failed"] == ["fig9"]
        assert manifest["config"]["seed"] == 7
        assert manifest["exp_jobs"] == 4
        entry = manifest["experiments"][0]
        assert entry["status"] == "ok"
        assert entry["metrics"] == {"share": 0.5}

    def test_all_ok_status(self):
        manifest = build_manifest(FleetConfig(), outcomes()[:1])
        assert manifest["status"] == "ok"
        assert manifest["failed"] == []

    def test_numpy_metric_values_become_json_numbers(self):
        np = pytest.importorskip("numpy")
        outcome = ExperimentOutcome(
            experiment_id="fig1", status="ok", metrics={"x": np.float64(1.5)}
        )
        manifest = build_manifest(FleetConfig(), [outcome])
        assert json.dumps(manifest)  # round-trips
        assert manifest["experiments"][0]["metrics"]["x"] == 1.5


class TestValidateManifest:
    def test_rejects_non_dict(self):
        with pytest.raises(ManifestError):
            validate_manifest([])

    def test_rejects_wrong_version(self):
        manifest = build_manifest(FleetConfig(), outcomes())
        manifest["schema_version"] = 99
        with pytest.raises(ManifestError, match="schema_version"):
            validate_manifest(manifest)

    def test_rejects_missing_outcome_fields(self):
        manifest = build_manifest(FleetConfig(), outcomes())
        del manifest["experiments"][0]["wall_time_s"]
        with pytest.raises(ManifestError, match="wall_time_s"):
            validate_manifest(manifest)

    def test_rejects_failed_without_error(self):
        manifest = build_manifest(FleetConfig(), outcomes())
        manifest["experiments"][1]["error"] = None
        with pytest.raises(ManifestError, match="without an error"):
            validate_manifest(manifest)

    def test_rejects_inconsistent_failed_list(self):
        manifest = build_manifest(FleetConfig(), outcomes())
        manifest["failed"] = []
        with pytest.raises(ManifestError, match="disagrees"):
            validate_manifest(manifest)

    def test_reports_every_problem_at_once(self):
        manifest = build_manifest(FleetConfig(), outcomes())
        manifest["schema"] = "nope"
        manifest["exp_jobs"] = "four"
        with pytest.raises(ManifestError) as excinfo:
            validate_manifest(manifest)
        message = str(excinfo.value)
        assert "schema" in message and "exp_jobs" in message


class TestWriteManifest:
    def test_writes_valid_json(self, tmp_path):
        manifest = build_manifest(FleetConfig(), outcomes())
        path = write_manifest(manifest, str(tmp_path / "sub" / "manifest.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        validate_manifest(loaded)
        assert loaded["failed"] == ["fig9"]

    def test_refuses_invalid_manifest(self, tmp_path):
        with pytest.raises(ManifestError):
            write_manifest({"schema": "bad"}, str(tmp_path / "m.json"))
