"""Tests for the metrics registry: counters, timers, spans."""

import threading

import pytest

from repro.obs.metrics import Metrics, TimerStats


class TestCounters:
    def test_incr_and_read(self):
        metrics = Metrics()
        metrics.incr("hits")
        metrics.incr("hits", 2)
        assert metrics.counter("hits") == 3
        assert metrics.counter("never") == 0

    def test_counters_copy_is_point_in_time(self):
        metrics = Metrics()
        metrics.incr("a")
        snapshot = metrics.counters()
        metrics.incr("a")
        assert snapshot == {"a": 1}
        assert metrics.counter("a") == 2

    def test_thread_safety(self):
        metrics = Metrics()

        def spin():
            for _ in range(1000):
                metrics.incr("n")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("n") == 8000


class TestTimersAndSpans:
    def test_observe_aggregates(self):
        metrics = Metrics()
        metrics.observe("t", 1.0)
        metrics.observe("t", 3.0)
        stats = metrics.timers()["t"]
        assert stats.count == 2
        assert stats.total_s == pytest.approx(4.0)
        assert stats.max_s == pytest.approx(3.0)
        assert stats.mean_s == pytest.approx(2.0)

    def test_span_records_elapsed(self):
        metrics = Metrics()
        with metrics.span("work"):
            pass
        stats = metrics.timers()["work"]
        assert stats.count == 1
        assert stats.total_s >= 0

    def test_nested_spans_qualify_names(self):
        metrics = Metrics()
        with metrics.span("outer"):
            with metrics.span("inner"):
                pass
        assert set(metrics.timers()) == {"outer", "outer/inner"}

    def test_span_pops_on_exception(self):
        metrics = Metrics()
        with pytest.raises(RuntimeError):
            with metrics.span("broken"):
                raise RuntimeError("x")
        with metrics.span("after"):
            pass
        assert "after" in metrics.timers()
        assert "broken/after" not in metrics.timers()

    def test_empty_timer_stats_mean(self):
        assert TimerStats().mean_s == 0.0


class TestExport:
    def test_snapshot_shape(self):
        metrics = Metrics()
        metrics.incr("c", 2)
        metrics.observe("t", 0.5)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 2}
        timer = snap["timers"]["t"]
        assert timer["count"] == 1
        assert timer["total_s"] == pytest.approx(0.5)
        assert timer["mean_s"] == pytest.approx(0.5)
        assert timer["max_s"] == pytest.approx(0.5)

    def test_render_profile_lists_everything(self):
        metrics = Metrics()
        metrics.incr("cache.hit", 3)
        metrics.observe("generate", 1.25)
        text = metrics.render_profile()
        assert "generate" in text
        assert "cache.hit" in text
        assert "3" in text

    def test_render_profile_empty(self):
        text = Metrics().render_profile()
        assert "(none recorded)" in text
