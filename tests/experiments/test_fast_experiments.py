"""Tests for the dataset-free experiments (analytic + packet-level)."""

import pytest

from repro.experiments import fig01_queue_share, fig03_multicast_validation
from repro.experiments import fig04_burst_validation, fig05_example_runs, perf_sampler
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.small(racks=6, runs_per_rack=2)


class TestRegistry:
    def test_every_entry_resolves(self):
        for experiment_id in EXPERIMENTS:
            assert callable(get_experiment(experiment_id))

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_ids_cover_all_paper_artifacts(self):
        expected = {f"fig{i}" for i in list(range(3, 20)) + [1]} | {
            "table1", "table2", "perf",
        }
        assert expected <= set(EXPERIMENTS)


class TestFig1:
    def test_fixed_points(self, ctx):
        result = fig01_queue_share.run(ctx)
        assert result.metric("share_alpha1_s1") == pytest.approx(0.5)
        assert result.metric("share_alpha1_s2") == pytest.approx(1 / 3)
        assert result.metric("share_alpha2_s1") == pytest.approx(2 / 3)
        assert result.metric("share_alpha2_s2") == pytest.approx(0.4)

    def test_packet_buffer_matches_formula(self, ctx):
        result = fig01_queue_share.run(ctx)
        assert result.metric("max_formula_vs_packet_error") < 0.02

    def test_has_five_alpha_series(self, ctx):
        result = fig01_queue_share.run(ctx)
        assert len(result.series) == 5


class TestFig3:
    def test_multicast_alignment(self, ctx):
        result = fig03_multicast_validation.run(ctx)
        assert result.metric("burst_alignment_fraction") >= 0.9
        assert result.metric("max_clock_skew_ms") < 1.0
        # Multicast is rate limited: bursts stay below line rate.
        assert result.metric("peak_rate_gbps") < 12.5


class TestFig4:
    def test_counts_five_bursty_servers(self, ctx):
        result = fig04_burst_validation.run(ctx)
        assert result.metric("max_concurrent_bursty") == 5
        assert result.metric("full_contention_buckets") >= 5


class TestFig5:
    def test_low_vs_high_examples(self, ctx):
        result = fig05_example_runs.run(ctx)
        assert result.metric("high_contention_mean") > result.metric("low_contention_mean")
        assert result.metric("low_contention_max") >= 1


class TestPerf:
    def test_breakeven(self, ctx):
        result = perf_sampler.run(ctx)
        assert 30_000 <= result.metric("breakeven_packets") <= 36_000
        assert 2.0 < result.metric("footprint_mb") < 5.0


class TestResultPlumbing:
    def test_save_writes_csv_and_report(self, ctx, tmp_path):
        result = fig01_queue_share.run(ctx)
        paths = result.save(str(tmp_path))
        assert any(path.endswith(".csv") for path in paths)
        assert any(path.endswith(".txt") for path in paths)

    def test_render_mentions_paper_claim(self, ctx):
        result = fig01_queue_share.run(ctx)
        assert "Paper:" in result.render()

    def test_missing_metric_rejected(self, ctx):
        from repro.errors import AnalysisError

        result = fig01_queue_share.run(ctx)
        with pytest.raises(AnalysisError):
            result.metric("nope")
