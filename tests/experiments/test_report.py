"""Tests for the combined report generator."""

import pytest

from repro.experiments.report import render_markdown, run_all, write_report


class TestReport:
    @pytest.fixture(scope="class")
    def subset_results(self, small_ctx):
        # A fast, representative subset: analytic, packet-level, dataset.
        return run_all(small_ctx, ["fig1", "fig4", "table2"])

    def test_run_all_subset(self, subset_results):
        assert set(subset_results) == {"fig1", "fig4", "table2"}

    def test_markdown_structure(self, subset_results, small_ctx):
        text = render_markdown(subset_results, small_ctx)
        assert text.startswith("# Millisampler reproduction report")
        assert "## Summary" in text
        assert "## table2:" in text
        assert "**Paper:**" in text
        assert "loss_inversion_ratio" in text

    def test_write_report(self, small_ctx, tmp_path):
        path = str(tmp_path / "REPORT.md")
        progress_calls = []
        write_report(
            small_ctx, path, ["fig1"],
            progress=lambda eid, took: progress_calls.append(eid),
        )
        assert progress_calls == ["fig1"]
        with open(path) as handle:
            assert "fig1" in handle.read()
