"""Tests for the combined report generator."""

import pytest

from repro.experiments import orchestrator
from repro.experiments.report import (
    orchestrate,
    render_markdown,
    run_all,
    write_report,
)


class TestReport:
    @pytest.fixture(scope="class")
    def subset_results(self, small_ctx):
        # A fast, representative subset: analytic, packet-level, dataset.
        return run_all(small_ctx, ["fig1", "fig4", "table2"])

    def test_run_all_subset(self, subset_results):
        assert set(subset_results) == {"fig1", "fig4", "table2"}

    def test_markdown_structure(self, subset_results, small_ctx):
        text = render_markdown(subset_results, small_ctx)
        assert text.startswith("# Millisampler reproduction report")
        assert "## Summary" in text
        assert "## table2:" in text
        assert "**Paper:**" in text
        assert "loss_inversion_ratio" in text

    def test_write_report(self, small_ctx, tmp_path):
        path = str(tmp_path / "REPORT.md")
        progress_calls = []
        write_report(
            small_ctx, path, ["fig1"],
            progress=lambda eid, took: progress_calls.append(eid),
        )
        assert progress_calls == ["fig1"]
        with open(path) as handle:
            assert "fig1" in handle.read()


class TestReportFailureIsolation:
    def test_report_completes_with_failure_section(
        self, small_ctx, tmp_path, monkeypatch
    ):
        from repro.experiments.registry import get_experiment as real

        def fake(experiment_id):
            if experiment_id == "fig4":
                def boom(ctx):
                    raise RuntimeError("report stub failure")
                return boom
            return real(experiment_id)

        monkeypatch.setattr(orchestrator, "get_experiment", fake)
        path = str(tmp_path / "REPORT.md")
        write_report(small_ctx, path, ["fig1", "fig4"])
        with open(path) as handle:
            text = handle.read()
        assert "## Failures" in text
        assert "report stub failure" in text
        assert "## fig1:" in text  # the healthy experiment still rendered
        assert "## fig4:" not in text

    def test_run_all_stays_fail_fast(self, small_ctx, monkeypatch):
        from repro.experiments.registry import get_experiment as real

        def fake(experiment_id):
            def boom(ctx):
                raise RuntimeError("fail fast")
            return boom if experiment_id == "fig1" else real(experiment_id)

        monkeypatch.setattr(orchestrator, "get_experiment", fake)
        with pytest.raises(RuntimeError, match="fail fast"):
            run_all(small_ctx, ["fig1"])

    def test_orchestrate_records_wall_time_in_markdown(self, small_ctx, tmp_path):
        orchestration = orchestrate(small_ctx, ["fig1"])
        text = render_markdown(
            orchestration.results, small_ctx, orchestration.outcomes
        )
        assert "*Completed in" in text
