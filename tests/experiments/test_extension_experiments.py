"""Tests for the extension experiments (crossval, gso, policy ablation)
and the CLI."""

import pytest

from repro.experiments import ablation_policies, crossval_fluid, gso_inflation
from repro.experiments.cli import main as cli_main
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.small(racks=6, runs_per_rack=2)


class TestCrossValidation:
    def test_fluid_tracks_packet_level(self, ctx):
        result = crossval_fluid.run(ctx)
        # Shapes must agree: loss grows with contention on both sides,
        # and the absolute gap stays small.
        assert result.metric("packet_loss_s16") > result.metric("packet_loss_s1") * 0.99
        assert result.metric("fluid_loss_s16") > result.metric("fluid_loss_s1")
        assert result.metric("max_gap") < 0.06

    def test_both_substrates_lose_under_overload(self, ctx):
        result = crossval_fluid.run(ctx)
        assert result.metric("packet_loss_s8") > 0
        assert result.metric("fluid_loss_s8") > 0


class TestGsoInflation:
    def test_fine_buckets_alias_most(self, ctx):
        result = gso_inflation.run(ctx)
        assert (
            result.metric("peak_utilization_100us")
            > result.metric("peak_utilization_1ms")
        )
        assert result.metric("peak_utilization_100us") > 1.0

    def test_coarse_buckets_near_line_rate(self, ctx):
        result = gso_inflation.run(ctx)
        assert result.metric("peak_utilization_10ms") < 1.1


class TestPolicyAblation:
    def test_dynamic_beats_static_on_spread_racks(self, ctx):
        result = ablation_policies.run(ctx)
        assert (
            result.metric("spread_loss_dynamic-threshold")
            <= result.metric("spread_loss_static-partition")
        )

    def test_all_policies_evaluated(self, ctx):
        result = ablation_policies.run(ctx)
        for name in ("dynamic-threshold", "static-partition", "complete-sharing",
                     "enhanced-dt", "flow-aware"):
            assert f"spread_loss_{name}" in result.metrics
            assert f"coloc_loss_{name}" in result.metrics


class TestFabricSmoothing:
    def test_fabric_absorbs_what_the_tor_drops(self, ctx):
        from repro.experiments import fabric_smoothing

        result = fabric_smoothing.run(ctx)
        assert (
            result.metric("fabric_tor_discards")
            < result.metric("direct_tor_discards")
        )
        assert result.metric("span_stretch") > 1.5

    def test_direct_fanin_overflows_tor(self, ctx):
        from repro.experiments import fabric_smoothing

        result = fabric_smoothing.run(ctx)
        assert result.metric("direct_tor_discards") > 0.1


class TestThresholdAblation:
    def test_inversion_robust_across_thresholds(self, ctx):
        from repro.experiments import ablation_threshold

        result = ablation_threshold.run(ctx)
        for threshold in (30, 50, 70):
            assert result.metric(f"inversion_holds_{threshold}pct") == 1.0

    def test_higher_threshold_fewer_bursts(self, ctx):
        from repro.experiments import ablation_threshold

        result = ablation_threshold.run(ctx)
        # Fewer samples exceed a higher cut, but contended fraction
        # stays in the same regime.
        assert (
            abs(
                result.metric("contended_fraction_50pct")
                - result.metric("contended_fraction_70pct")
            )
            < 0.25
        )


class TestSketchAblation:
    def test_precise_to_a_dozen_and_saturates(self, ctx):
        from repro.experiments import ablation_sketch

        result = ablation_sketch.run(ctx)
        assert result.metric("rel_error_at_12") < 0.15
        assert 400 < result.metric("mean_estimate_at_800") < 700

    def test_fleet_noise_model_matches_real_sketch(self, ctx):
        """The binomial approximation the fleet synthesis uses must
        mean-match the true sketch across the operating range."""
        from repro.experiments import ablation_sketch

        result = ablation_sketch.run(ctx)
        assert result.metric("max_fleet_model_gap") < 0.05


class TestFig15EdgeCases:
    def test_mostly_idle_run_does_not_crash(self):
        """Percentile interpolation can put a run's p90 contention just
        below its minimum over active samples; the buffer-share drop is
        then zero, not an error."""
        from repro.analysis.contention import ContentionStats
        from repro.analysis.summary import RunSummary
        from repro.experiments import fig15_run_variation
        from repro.experiments.context import ExperimentContext

        summary = RunSummary(
            rack="r0", region="RegA", hour=6, servers=4, buckets=100,
            sampling_interval=1e-3,
            contention=ContentionStats(
                mean=0.2, min_active=2.0, p90=1.8, max=3.0, frac_zero=0.9
            ),
            bursts=[], server_stats=[],
            switch_discard_bytes=0, switch_ingress_bytes=1,
        )

        class FakeCtx:
            def run_contention(self, region):
                from repro.analysis.streaming import run_contention_from_summaries

                return run_contention_from_summaries([summary])

        result = fig15_run_variation.run(FakeCtx())
        assert result.metric("median_share_drop") == 0.0


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out and "crossval" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["run", "fig99"]) == 2

    def test_run_writes_outputs(self, tmp_path, capsys):
        code = cli_main(
            ["run", "fig1", "--racks", "4", "--runs-per-rack", "2",
             "--out", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert (tmp_path / "fig1.csv").exists()
        assert (tmp_path / "fig1.txt").exists()

    def test_export_then_analyze(self, tmp_path, capsys):
        out = str(tmp_path / "data")
        assert cli_main(["export", out, "--racks", "2", "--runs-per-rack", "1"]) == 0
        assert cli_main(["analyze", out]) == 0
        report = capsys.readouterr().out
        assert "bursts" in report
        assert "contended" in report
