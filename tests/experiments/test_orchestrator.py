"""Tests for fault-isolated, observable experiment orchestration."""

import pytest

from repro.errors import ConfigError
from repro.experiments import orchestrator
from repro.experiments.context import ExperimentContext
from repro.experiments.orchestrator import (
    ExperimentOutcome,
    OrchestrationResult,
    run_experiments,
    warm_datasets,
)


def tiny_ctx(**kwargs) -> ExperimentContext:
    return ExperimentContext.small(racks=2, runs_per_rack=2, **kwargs)


#: Fast experiments that do not need the fleet dataset.
FAST = ["fig1", "perf"]


def failing_registry(monkeypatch, failing_id, exc=None):
    """Make one experiment raise while the rest resolve normally."""
    from repro.experiments.registry import get_experiment as real

    exc = exc or RuntimeError("injected failure")

    def fake(experiment_id):
        if experiment_id == failing_id:
            def boom(ctx):
                raise exc
            return boom
        return real(experiment_id)

    monkeypatch.setattr(orchestrator, "get_experiment", fake)


class TestIsolation:
    def test_failure_is_contained_and_suite_completes(self, monkeypatch):
        failing_registry(monkeypatch, "perf")
        orch = run_experiments(tiny_ctx(), ["fig1", "perf", "fig4"])
        assert [o.experiment_id for o in orch.outcomes] == ["fig1", "perf", "fig4"]
        assert [o.status for o in orch.outcomes] == ["ok", "failed", "ok"]
        failed = orch.outcomes[1]
        assert failed.error == "RuntimeError: injected failure"
        assert not orch.ok
        assert set(orch.results) == {"fig1", "fig4"}

    def test_failure_summary_names_each_failure(self, monkeypatch):
        failing_registry(monkeypatch, "perf")
        orch = run_experiments(tiny_ctx(), ["fig1", "perf"])
        summary = orch.failure_summary()
        assert "1/2" in summary
        assert "perf" in summary and "injected failure" in summary
        assert OrchestrationResult(
            outcomes=[ExperimentOutcome("fig1", "ok")], results={}
        ).failure_summary() == ""

    def test_on_error_raise_propagates(self, monkeypatch):
        failing_registry(monkeypatch, "perf")
        with pytest.raises(RuntimeError, match="injected failure"):
            run_experiments(tiny_ctx(), ["perf"], on_error="raise")

    def test_on_error_raise_releases_tracemalloc(self, monkeypatch):
        """Regression: the re-raise path returned before the epilogue,
        leaving the process-wide tracer running and leaking its peak
        into every later tracemalloc measurement in the process."""
        import tracemalloc

        assert not tracemalloc.is_tracing()
        failing_registry(monkeypatch, "perf")
        with pytest.raises(RuntimeError, match="injected failure"):
            run_experiments(tiny_ctx(), ["perf"], on_error="raise")
        assert not tracemalloc.is_tracing()

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigError):
            run_experiments(tiny_ctx(), FAST, on_error="explode")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError, match="unknown experiments"):
            run_experiments(tiny_ctx(), ["figure-nope"])


class TestOutcomeTelemetry:
    def test_serial_outcomes_carry_timing_and_memory(self):
        orch = run_experiments(tiny_ctx(), FAST)
        for outcome in orch.outcomes:
            assert outcome.ok
            assert outcome.wall_time_s > 0
            assert outcome.peak_tracemalloc_bytes is not None
            assert outcome.peak_tracemalloc_bytes > 0
            assert outcome.peak_rss_bytes is not None
            assert outcome.metrics  # headline metrics captured

    def test_experiment_spans_recorded(self):
        ctx = tiny_ctx()
        run_experiments(ctx, ["fig1"])
        assert "experiment/fig1" in ctx.metrics.timers()

    def test_cache_miss_then_hit_attributed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = ExperimentContext.small(racks=2, runs_per_rack=2)
        first.cache_dir = cache_dir
        orch = run_experiments(first, ["table1"])
        (outcome,) = orch.outcomes
        assert outcome.cache_misses == 2  # both regions generated
        assert outcome.cache_hits == 0

        second = ExperimentContext.small(racks=2, runs_per_rack=2)
        second.cache_dir = cache_dir
        orch = run_experiments(second, ["table1"])
        (outcome,) = orch.outcomes
        assert outcome.cache_hits == 2
        assert outcome.cache_misses == 0


class TestParallel:
    def test_parallel_metrics_identical_to_serial(self):
        ids = ["fig1", "perf", "table1"]
        serial = run_experiments(tiny_ctx(), ids, exp_jobs=1)
        parallel = run_experiments(tiny_ctx(), ids, exp_jobs=4)
        assert [o.experiment_id for o in parallel.outcomes] == ids
        assert all(o.ok for o in parallel.outcomes)
        for ser, par in zip(serial.outcomes, parallel.outcomes):
            assert ser.metrics == par.metrics  # exact float equality

    def test_parallel_isolates_failures_and_keeps_order(self, monkeypatch):
        failing_registry(monkeypatch, "fig4")
        orch = run_experiments(tiny_ctx(), ["fig1", "fig4", "perf"], exp_jobs=3)
        assert [o.experiment_id for o in orch.outcomes] == ["fig1", "fig4", "perf"]
        assert [o.status for o in orch.outcomes] == ["ok", "failed", "ok"]

    def test_warmup_failure_skips_dataset_experiments(self, monkeypatch):
        def broken_warmup(ctx, regions=orchestrator.WARMUP_REGIONS):
            raise RuntimeError("generation exploded")

        monkeypatch.setattr(orchestrator, "warm_datasets", broken_warmup)
        orch = run_experiments(tiny_ctx(), ["fig1", "table1"], exp_jobs=2)
        by_id = {o.experiment_id: o for o in orch.outcomes}
        assert by_id["fig1"].status == "ok"
        assert by_id["table1"].status == "skipped"
        assert "generation exploded" in by_id["table1"].error
        assert not orch.ok

    def test_warmup_populates_both_regions(self):
        ctx = tiny_ctx()
        warm_datasets(ctx)
        assert set(ctx._datasets) == {"RegA", "RegB"}
        assert "warmup" in ctx.metrics.timers()


class TestProgress:
    def test_progress_streams_in_requested_order(self, monkeypatch):
        failing_registry(monkeypatch, "perf")
        seen = []
        run_experiments(
            tiny_ctx(),
            ["fig1", "perf"],
            exp_jobs=2,
            progress=lambda outcome, result: seen.append(
                (outcome.experiment_id, outcome.status, result is not None)
            ),
        )
        assert seen == [("fig1", "ok", True), ("perf", "failed", False)]
