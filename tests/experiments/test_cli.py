"""CLI integration tests: export/analyze round trips, orchestrated runs,
failure isolation, and manifest schema guarantees."""

import json

import pytest

from repro import units
from repro.experiments import cli, orchestrator
from repro.obs.manifest import MANIFEST_SCHEMA, validate_manifest
from tests.conftest import make_run, make_sync_run


class TestExportAnalyzeRoundTrip:
    def test_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "msdata")
        assert cli.main([
            "export", out, "--racks", "2", "--runs-per-rack", "2", "--seed", "7",
        ]) == 0
        assert "wrote 4 rack runs" in capsys.readouterr().out

        assert cli.main(["analyze", out]) == 0
        text = capsys.readouterr().out
        assert "Millisampler dataset analysis" in text
        assert "rack runs" in text
        assert "median burst length (ms)" in text

    def test_export_runs_per_rack_over_24_is_a_clear_error(self, tmp_path, capsys):
        rc = cli.main(["export", str(tmp_path / "x"), "--runs-per-rack", "25"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--runs-per-rack" in err
        assert "24" in err
        assert "ValueError" not in err

    def test_export_rejects_zero_runs_per_rack(self, tmp_path, capsys):
        assert cli.main(["export", str(tmp_path / "x"), "--runs-per-rack", "0"]) == 2
        assert "--runs-per-rack" in capsys.readouterr().err

    def test_analyze_converts_burst_length_with_sampling_interval(
        self, tmp_path, capsys
    ):
        """A 100 us export's 3-bucket bursts are 0.3 ms, not 3 ms."""
        from repro.io.msdata import write_sync_run

        interval = 1e-4
        bursty = 0.8 * units.SERVER_LINK_RATE * interval
        quiet = 0.05 * units.SERVER_LINK_RATE * interval
        series = [quiet] * 5 + [bursty] * 3 + [quiet] * 12
        runs = [
            make_run(series, host=f"h{i}", sampling_interval=interval)
            for i in range(2)
        ]
        write_sync_run(make_sync_run([], runs=runs), str(tmp_path))

        assert cli.main(["analyze", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        median_row = next(
            line for line in text.splitlines() if "median burst length" in line
        )
        assert "0.3" in median_row


def inject_failure(monkeypatch, failing_id="perf"):
    from repro.experiments.registry import get_experiment as real

    def fake(experiment_id):
        if experiment_id == failing_id:
            def boom(ctx):
                raise RuntimeError("stub experiment failure")
            return boom
        return real(experiment_id)

    monkeypatch.setattr(orchestrator, "get_experiment", fake)


FAST_ARGS = ["--racks", "2", "--runs-per-rack", "2", "--no-cache", "--quiet"]


class TestRunFailureIsolation:
    def test_suite_completes_with_nonzero_exit_and_manifest(
        self, tmp_path, capsys, monkeypatch
    ):
        inject_failure(monkeypatch)
        manifest_path = str(tmp_path / "out" / "manifest.json")
        out_dir = str(tmp_path / "results")
        rc = cli.main(
            ["run", "fig1", "perf", "fig4", "--out", out_dir,
             "--manifest", manifest_path] + FAST_ARGS
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAILURES (1/3" in captured.err
        assert "stub experiment failure" in captured.err
        # The other experiments still ran and saved their artifacts.
        assert (tmp_path / "results" / "fig1.txt").exists()
        assert (tmp_path / "results" / "fig4.txt").exists()
        assert not (tmp_path / "results" / "perf.txt").exists()

        with open(manifest_path) as handle:
            manifest = json.load(handle)
        validate_manifest(manifest)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["status"] == "failed"
        assert manifest["failed"] == ["perf"]
        by_id = {e["experiment_id"]: e for e in manifest["experiments"]}
        assert by_id["fig1"]["status"] == "ok"
        assert by_id["fig1"]["wall_time_s"] > 0
        assert isinstance(by_id["fig1"]["cache_hits"], int)
        assert isinstance(by_id["fig1"]["cache_misses"], int)
        assert by_id["fig1"]["metrics"]
        assert by_id["perf"]["status"] == "failed"
        assert "stub experiment failure" in by_id["perf"]["error"]

    def test_successful_run_exits_zero(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "manifest.json")
        assert cli.main(["run", "fig1", "--manifest", manifest_path] + FAST_ARGS) == 0
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        validate_manifest(manifest)
        assert manifest["status"] == "ok"
        assert manifest["config"]["racks_per_region"] == 2

    def test_unknown_experiment_exits_2(self, capsys):
        assert cli.main(["run", "no-such-figure"] + FAST_ARGS) == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestPolicyFlag:
    def test_policy_recorded_in_manifest(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "manifest.json")
        assert cli.main(
            ["run", "fig1", "--manifest", manifest_path,
             "--policy", "delay-driven:target_delay_steps=3"] + FAST_ARGS
        ) == 0
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert json.loads(manifest["config"]["policy"]) == {
            "name": "delay-driven", "params": {"target_delay_steps": 3},
        }

    def test_default_policy_recorded_when_flag_absent(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "manifest.json")
        assert cli.main(["run", "fig1", "--manifest", manifest_path] + FAST_ARGS) == 0
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert json.loads(manifest["config"]["policy"])["name"] == "dynamic-threshold"

    def test_unknown_policy_is_a_parse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "fig1", "--policy", "bogus"] + FAST_ARGS)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown sharing policy" in err
        assert "registered:" in err

    def test_unknown_policy_param_is_a_parse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["run", "fig1", "--policy", "flow-aware:tails=3"] + FAST_ARGS)
        assert exc.value.code == 2
        assert "does not take parameter" in capsys.readouterr().err


class TestExpJobsParity:
    def test_parallel_manifest_metrics_byte_identical(
        self, tmp_path, capsys
    ):
        ids = ["fig1", "fig4", "perf"]

        def metrics_blob(exp_jobs, name):
            path = str(tmp_path / name)
            assert cli.main(
                ["run", *ids, "--exp-jobs", str(exp_jobs), "--manifest", path]
                + FAST_ARGS
            ) == 0
            with open(path) as handle:
                manifest = json.load(handle)
            return json.dumps(
                [[e["experiment_id"], e["metrics"]] for e in manifest["experiments"]],
                sort_keys=True,
            )

        assert metrics_blob(1, "serial.json") == metrics_blob(4, "parallel.json")


class TestAuditFlag:
    def test_audited_run_is_clean_and_counted_in_manifest(self, tmp_path, capsys):
        """Acceptance: the audited suite completes with zero violations,
        and the manifest telemetry records how much auditing ran."""
        manifest_path = str(tmp_path / "manifest.json")
        rc = cli.main(
            ["run", "fig1", "fig4", "--audit", "--manifest", manifest_path]
            + FAST_ARGS
        )
        assert rc == 0
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        counters = manifest["telemetry"]["counters"]
        assert counters.get("audit.violations", 0) == 0
        assert counters["audit.events"] > 0
        assert counters["audit.checks"] >= counters["audit.events"]

    def test_audit_off_records_no_audit_counters(self, tmp_path):
        manifest_path = str(tmp_path / "manifest.json")
        assert cli.main(["run", "fig1", "--manifest", manifest_path] + FAST_ARGS) == 0
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert not any(
            name.startswith("audit.")
            for name in manifest["telemetry"]["counters"]
        )

    def test_audit_violation_fails_the_experiment(self, tmp_path, capsys, monkeypatch):
        """An invariant violation inside one experiment is reported
        through the normal failure boundary: that experiment fails, the
        rest of the suite completes."""
        from repro.experiments.registry import get_experiment as real

        def fake(experiment_id):
            if experiment_id == "fig4":
                def corrupt(ctx):
                    from repro.config import BufferConfig
                    from repro.simnet.buffer import SharedBuffer

                    buffer = SharedBuffer(BufferConfig(shared_bytes=1000))
                    buffer.register_queue("q0")
                    buffer.admit("q0", 100)
                    buffer._shared_occupancy += 7  # corrupt the pool counter
                    buffer.admit("q0", 100)  # next event trips the auditor
                return corrupt
            return real(experiment_id)

        monkeypatch.setattr(orchestrator, "get_experiment", fake)
        manifest_path = str(tmp_path / "manifest.json")
        rc = cli.main(
            ["run", "fig1", "fig4", "--audit", "--manifest", manifest_path]
            + FAST_ARGS
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "shared-occupancy-sync" in captured.err
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["failed"] == ["fig4"]
        assert manifest["telemetry"]["counters"]["audit.violations"] >= 1


class TestProfileFlag:
    def test_profile_prints_timers(self, capsys):
        assert cli.main(["run", "fig1", "--profile"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "profile: timers" in out
        assert "experiment/fig1" in out


class TestListStillWorks:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table2" in out
