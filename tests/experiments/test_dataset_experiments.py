"""Tests for the dataset-driven experiments, on one shared small dataset.

These assert the paper's *qualitative* claims hold in the synthesis:
the RegA bimodality, the persistence of rack classes, the loss
inversion, and the burst-property/loss shapes.  Absolute numbers are
checked only loosely (the dataset here is tiny).
"""

import pytest

from repro.experiments import (
    fig06_burst_frequency,
    fig07_burst_length,
    fig08_connections,
    fig09_contention_cdf,
    fig10_task_diversity,
    fig11_dominant_task,
    fig12_rack_variation,
    fig13_diurnal,
    fig14_volume_correlation,
    fig15_run_variation,
    fig16_contention_loss,
    fig17_switch_discards,
    fig18_length_loss,
    fig19_incast_loss,
    table1_dataset,
    table2_burst_summary,
)

# Each experiment runs once per module on the session-scoped context.


@pytest.fixture(scope="module")
def results(small_ctx):
    return {
        "fig6": fig06_burst_frequency.run(small_ctx),
        "fig7": fig07_burst_length.run(small_ctx),
        "fig8": fig08_connections.run(small_ctx),
        "fig9": fig09_contention_cdf.run(small_ctx),
        "fig10": fig10_task_diversity.run(small_ctx),
        "fig11": fig11_dominant_task.run(small_ctx),
        "fig12": fig12_rack_variation.run(small_ctx),
        "fig13": fig13_diurnal.run(small_ctx),
        "fig14": fig14_volume_correlation.run(small_ctx),
        "fig15": fig15_run_variation.run(small_ctx),
        "fig16": fig16_contention_loss.run(small_ctx),
        "fig17": fig17_switch_discards.run(small_ctx),
        "fig18": fig18_length_loss.run(small_ctx),
        "fig19": fig19_incast_loss.run(small_ctx),
        "table1": table1_dataset.run(small_ctx),
        "table2": table2_burst_summary.run(small_ctx),
    }


class TestBurstCharacterization:
    def test_fig6_burst_frequency_band(self, results):
        median = results["fig6"].metric("median_bursts_per_sec")
        assert 3 <= median <= 30  # paper 7.5
        assert results["fig6"].metric("p90_bursts_per_sec") > median

    def test_fig6_bursty_fraction_band(self, results):
        fraction = results["fig6"].metric("bursty_server_run_fraction")
        assert 0.15 <= fraction <= 0.6  # paper 0.34

    def test_fig6_utilization_contrast(self, results):
        inside = results["fig6"].metric("median_in_burst_utilization")
        outside = results["fig6"].metric("median_outside_burst_utilization")
        assert inside > 0.5
        assert outside < 0.15

    def test_fig7_length_band(self, results):
        assert 1 <= results["fig7"].metric("median_length_ms") <= 4  # paper 2
        assert results["fig7"].metric("p90_length_ms") <= 16  # paper 8

    def test_fig7_non_contended_shorter(self, results):
        assert results["fig7"].metric("non_contended_under_3ms_pct") >= 70  # paper 88

    def test_fig7_non_contended_smaller(self, results):
        assert (
            results["fig7"].metric("nc_median_volume_mb")
            <= results["fig7"].metric("median_volume_mb")
        )

    def test_fig8_more_connections_inside(self, results):
        assert results["fig8"].metric("median_ratio") > 1.5  # paper 2.7


class TestContentionCharacterization:
    def test_fig9_rega_bimodal(self, results):
        gap = results["fig9"].metric("bimodal_gap_ratio")
        assert gap > 2.0  # paper 3.4x

    def test_fig9_regb_above_rega_typical(self, results):
        assert (
            results["fig9"].metric("regb_median")
            > results["fig9"].metric("rega_bottom75_mean") * 0.8
        )

    def test_fig10_high_racks_fewer_tasks(self, results):
        assert (
            results["fig10"].metric("median_tasks_RegA-High")
            < results["fig10"].metric("median_tasks_RegA-Typical")
        )

    def test_fig11_dominant_share_separation(self, results):
        assert results["fig11"].metric("high_median_share_pct") >= 55
        assert results["fig11"].metric("typical_median_share_pct") <= 45

    def test_fig12_high_racks_persistent(self, results):
        persistence = results["fig12"].metrics.get("RegA_high_min_over_low_p75", 0.0)
        assert persistence >= 0.5  # most high racks never dip into the low band

    def test_fig13_diurnal_peak(self, results):
        assert results["fig13"].metric("rega_high_peak_increase") > 0.05  # paper 0.276

    def test_fig14_volume_correlates(self, results):
        assert results["fig14"].metric("pearson_r") > 0.3

    def test_fig15_share_drop_median(self, results):
        drop = results["fig15"].metric("median_share_drop")
        assert 0.2 <= drop <= 0.7  # paper 0.333


class TestLossAnalysis:
    def test_table2_loss_inversion(self, results):
        """The paper's headline: RegA-Typical lossier than RegA-High."""
        typical = results["table2"].metric("lossy_pct_RegA-Typical")
        high = results["table2"].metric("lossy_pct_RegA-High")
        assert typical > high

    def test_table2_high_racks_all_contended(self, results):
        assert results["table2"].metric("contended_pct_RegA-High") >= 95  # paper 100

    def test_table2_most_bursts_contended(self, results):
        assert results["table2"].metric("overall_contended_pct") >= 60  # paper 91.4

    def test_table2_high_racks_overrepresented_in_bursts(self, results):
        """20% of racks produce ~half the bursts (paper 47.8%)."""
        assert results["table2"].metric("rega_high_burst_share") >= 0.3

    def test_fig16_inversion_at_low_contention(self, results):
        typical_low = results["fig16"].metric("typical_loss_at_contention_le5")
        high_overall = results["fig16"].metric("high_loss_overall")
        assert typical_low > high_overall

    def test_fig17_switch_counters_agree(self, results):
        typical = results["fig17"].metrics.get(
            "median_discards_per_mb_RegA-Typical", 0.0
        )
        high = results["fig17"].metrics.get("median_discards_per_mb_RegA-High", 0.0)
        assert high <= typical

    def test_fig18_short_bursts_rarely_lose(self, results):
        assert results["fig18"].metric("short_burst_loss_pct") < 2.0

    def test_fig18_contended_lossier_at_length(self, results):
        assert results["fig18"].metric("contended_minus_nc_at_long") >= 0.0

    def test_fig19_contended_lossier_at_fanin(self, results):
        ratio = results["fig19"].metric("median_contended_to_nc_ratio")
        assert ratio > 1.0  # paper 3-4x


class TestDatasetAccounting:
    def test_table1_scales(self, results, small_ctx):
        expected_runs = small_ctx.fleet.racks_per_region * small_ctx.fleet.runs_per_rack
        assert results["table1"].metric("RegA_runs") == expected_runs
        assert results["table1"].metric("RegA_server_runs") == expected_runs * 92

    def test_table1_bursty_fraction_band(self, results):
        fraction = results["table1"].metric("RegA_bursty_fraction")
        assert 0.1 <= fraction <= 0.6
