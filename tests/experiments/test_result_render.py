"""Tests for ExperimentResult rendering, including the metric guard."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.base import ExperimentResult, format_metric


def result(**metrics) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="figX",
        title="Test figure",
        paper_claim="claim",
        metrics=metrics,
    )


class TestRenderMetrics:
    def test_numeric_metrics_render(self):
        text = result(alpha=0.123456789, count=42).render()
        assert "alpha = 0.123457" in text
        assert "count = 42" in text

    def test_numpy_scalars_render(self):
        np = pytest.importorskip("numpy")
        text = result(x=np.float64(1.5)).render()
        assert "x = 1.5" in text

    def test_non_numeric_metric_raises_analysis_error(self):
        with pytest.raises(AnalysisError) as excinfo:
            result(alpha=0.5, label="typical").render()
        message = str(excinfo.value)
        assert "figX" in message
        assert "label" in message
        assert "'typical'" in message
        assert "str" in message

    def test_none_metric_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="NoneType"):
            result(missing=None).render()


class TestFormatMetric:
    def test_passthrough(self):
        assert format_metric("figX", "m", 1234.5678) == "1234.57"

    def test_rejects_list(self):
        with pytest.raises(AnalysisError, match="must be numbers"):
            format_metric("figX", "m", [1, 2])
