"""Registry/documentation consistency checks.

Cheap guards that keep the experiment registry, the benchmark suite,
and the docs from drifting apart as artifacts are added.
"""

import glob
import importlib
import os

import pytest

from repro.experiments.registry import EXPERIMENTS

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestRegistry:
    def test_every_module_importable_and_has_run(self):
        for entry in EXPERIMENTS.values():
            module = importlib.import_module(
                f"repro.experiments.{entry.module}"
            )
            assert callable(module.run), entry.experiment_id

    def test_every_module_has_docstring_citing_the_paper(self):
        for entry in EXPERIMENTS.values():
            module = importlib.import_module(
                f"repro.experiments.{entry.module}"
            )
            assert module.__doc__, entry.experiment_id
            assert len(module.__doc__) > 80, entry.experiment_id

    def test_paper_artifacts_all_registered(self):
        paper_ids = {f"fig{i}" for i in [1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                          13, 14, 15, 16, 17, 18, 19]}
        paper_ids |= {"table1", "table2"}
        assert paper_ids <= set(EXPERIMENTS)

    def test_each_paper_artifact_has_a_benchmark(self):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        bench_source = ""
        for path in glob.glob(os.path.join(bench_dir, "test_bench_*.py")):
            with open(path) as handle:
                bench_source += handle.read()
        for entry in EXPERIMENTS.values():
            if entry.experiment_id.startswith(("fig", "table")):
                assert entry.module in bench_source, (
                    f"no benchmark imports experiments.{entry.module}"
                )


class TestDocumentation:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_docs_exist_and_are_substantial(self, name):
        path = os.path.join(REPO_ROOT, name)
        assert os.path.exists(path), name
        with open(path) as handle:
            assert len(handle.read()) > 2000, name

    def test_experiments_md_covers_every_paper_artifact(self):
        with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as handle:
            text = handle.read()
        for artifact in ("Fig 1", "Fig 9", "Fig 16", "Table 2", "Table 1"):
            assert artifact in text, artifact

    def test_design_md_confirms_paper_identity(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as handle:
            text = handle.read()
        assert "matches the target paper" in text
