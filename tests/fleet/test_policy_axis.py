"""The buffer-sharing policy axis: registry, specs, and policy kernels.

Covers the identity layer (PolicySpec canonical JSON and CLI parsing),
the registry (every policy addressable by name, geometry injection),
the two newer policies' threshold rules (delay-driven sharing and the
SONiC-style shared headroom pool), the FAB mice/elephant boundary that
is pinned inclusive, and the bit-identity of every policy's batched
``limits`` kernel against the per-run fallback loop.
"""

import json

import numpy as np
import pytest

from repro import units
from repro.config import DEFAULT_POLICY_SPEC, PolicySpec
from repro.errors import ConfigError
from repro.fleet.policies import (
    POLICY_REGISTRY,
    DelayDrivenSharingPolicy,
    DynamicThresholdPolicy,
    FlowAwareThresholdPolicy,
    SharedHeadroomPoolPolicy,
    SharingPolicy,
    build_policy,
    parse_policy_arg,
    register_policy,
    registered_policy_specs,
)

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL

ALL_SPECS = registered_policy_specs()


def limits_for(policy, pool_used=0.0, queue_used=0.0, active=0.0, total=1000.0):
    return policy.limits(
        shared_total=total,
        pool_used=np.array([pool_used]),
        quadrant=np.array([0]),
        queue_shared_used=np.array([queue_used]),
        active_steps=np.array([active]),
    )[0]


class TestPolicySpec:
    def test_default_spec_is_dt_with_no_params(self):
        assert DEFAULT_POLICY_SPEC.name == "dynamic-threshold"
        assert DEFAULT_POLICY_SPEC.params == ()
        assert PolicySpec() == DEFAULT_POLICY_SPEC

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_canonical_json_roundtrip_every_registered_policy(self, spec):
        text = spec.canonical_json()
        assert PolicySpec.from_json(text) == spec
        # Canonical form is stable: re-serializing the round-trip gives
        # the same bytes, so it is safe inside cache keys.
        assert PolicySpec.from_json(text).canonical_json() == text
        json.loads(text)  # valid strict JSON (allow_nan=False)

    def test_roundtrip_with_params(self):
        spec = PolicySpec(
            name="delay-driven", params=(("target_delay_steps", 3.5), ("alpha", 2.0))
        )
        again = PolicySpec.from_json(spec.canonical_json())
        assert again == spec
        # Params are normalized sorted, so declaration order is identity-free.
        assert again.params == (("alpha", 2.0), ("target_delay_steps", 3.5))

    def test_from_string_cli_forms(self):
        assert PolicySpec.from_string("complete-sharing") == PolicySpec(
            name="complete-sharing"
        )
        spec = PolicySpec.from_string("flow-aware:mice_steps=6,mice_alpha=2.5")
        assert spec.param_dict() == {"mice_steps": 6, "mice_alpha": 2.5}
        assert isinstance(spec.param_dict()["mice_steps"], int)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            PolicySpec(name="")
        with pytest.raises(ConfigError):
            PolicySpec(name="dt", params=(("alpha", float("nan")),))
        with pytest.raises(ConfigError):
            PolicySpec(name="dt", params=(("alpha", 1.0), ("alpha", 2.0)))
        with pytest.raises(ConfigError):
            PolicySpec.from_string("flow-aware:mice_steps")


class TestRegistry:
    def test_registry_names_match_classes(self):
        for name, cls in POLICY_REGISTRY.items():
            assert cls.name == name

    def test_registered_specs_cover_registry_dt_first(self):
        specs = registered_policy_specs()
        assert specs[0] == DEFAULT_POLICY_SPEC
        assert {s.name for s in specs} == set(POLICY_REGISTRY)
        assert len(specs) == len(POLICY_REGISTRY)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_build_every_registered_policy(self, spec):
        policy = build_policy(spec, queues_per_quadrant=4)
        assert isinstance(policy, SharingPolicy)
        assert policy.name == spec.name
        # Every built-in ships a vectorized batch kernel.
        assert policy.batch_limits is True

    def test_build_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown sharing policy"):
            build_policy(PolicySpec(name="nope"))

    def test_build_unknown_param_rejected(self):
        spec = PolicySpec(name="dynamic-threshold", params=(("beta", 1.0),))
        with pytest.raises(ConfigError, match="does not take parameter"):
            build_policy(spec)

    def test_geometry_injected_only_when_needed(self):
        built = build_policy(PolicySpec(name="static-partition"), queues_per_quadrant=7)
        assert built.queues_per_quadrant == 7
        # A spec may pin geometry explicitly; the caller's value then loses.
        pinned = PolicySpec(name="static-partition", params=(("queues_per_quadrant", 3),))
        assert build_policy(pinned, queues_per_quadrant=7).queues_per_quadrant == 3
        with pytest.raises(ConfigError, match="partitions by queue count"):
            build_policy(PolicySpec(name="shared-headroom"))

    def test_parse_policy_arg_validates(self):
        assert parse_policy_arg("delay-driven:target_delay_steps=1.5").name == (
            "delay-driven"
        )
        with pytest.raises(ConfigError):
            parse_policy_arg("no-such-policy")
        with pytest.raises(ConfigError):
            parse_policy_arg("delay-driven:bogus_param=1")

    def test_duplicate_registration_rejected(self):
        class Dupe(DynamicThresholdPolicy):
            name = "dynamic-threshold"

        with pytest.raises(ConfigError, match="registered twice"):
            register_policy(Dupe)

    def test_abstract_name_rejected(self):
        class Nameless(SharingPolicy):
            pass

        with pytest.raises(ConfigError, match="concrete name"):
            register_policy(Nameless)


class TestFlowAwareBoundary:
    """The mice window is inclusive: ``active_steps <= mice_steps`` is a
    mouse.  Every dataset generated to date used this rule, so the
    boundary is pinned — a drive-by "fix" flipping it to ``<`` would
    silently re-classify boundary queues and shift loss."""

    def test_exactly_mice_steps_is_still_a_mouse(self):
        policy = FlowAwareThresholdPolicy(
            mice_alpha=4.0, elephant_alpha=0.5, mice_steps=4
        )
        free = 1000.0 - 500.0
        at_boundary = limits_for(policy, pool_used=500.0, active=4)
        past_boundary = limits_for(policy, pool_used=500.0, active=5)
        assert at_boundary == 4.0 * free
        assert past_boundary == 0.5 * free

    def test_fresh_queue_is_a_mouse(self):
        policy = FlowAwareThresholdPolicy()
        assert limits_for(policy, pool_used=0.0, active=0) == 4.0 * 1000.0


class TestDelayDrivenRule:
    def test_cap_binds_on_idle_pool(self):
        """Unlike DT, a fresh burst into an empty buffer cannot buy more
        than the delay budget's worth of queue."""
        policy = DelayDrivenSharingPolicy(alpha=1.0, target_delay_steps=2.0)
        dt = DynamicThresholdPolicy(alpha=1.0)
        total = 4 * 1024 * 1024  # a paper-like 4 MB quadrant
        assert limits_for(policy, pool_used=0.0, total=total) == 2.0 * DRAIN
        assert limits_for(dt, pool_used=0.0, total=total) == total

    def test_converges_to_dt_under_contention(self):
        policy = DelayDrivenSharingPolicy(alpha=1.0, target_delay_steps=2.0)
        dt = DynamicThresholdPolicy(alpha=1.0)
        total = 4 * 1024 * 1024
        # Pool nearly full: DT share drops below the delay cap.
        busy = total - 0.25 * DRAIN
        assert limits_for(policy, pool_used=busy, total=total) == limits_for(
            dt, pool_used=busy, total=total
        )

    def test_explicit_drain_rate(self):
        policy = DelayDrivenSharingPolicy(target_delay_steps=3.0, drain_per_step=100.0)
        assert limits_for(policy, pool_used=0.0, total=1e9) == 300.0


class TestSharedHeadroomRule:
    def test_guarantees_quota_under_contention(self):
        """With the main pool saturated, DT grants ~nothing while the
        headroom policy still grants the over-subscribed quota."""
        policy = SharedHeadroomPoolPolicy(
            queues_per_quadrant=8, headroom_fraction=0.15, oversubscription=2.0
        )
        dt = DynamicThresholdPolicy(alpha=1.0)
        total = 1000.0
        main = 850.0
        assert limits_for(policy, pool_used=main, total=total) == pytest.approx(
            2.0 * 150.0 / 8
        )
        assert limits_for(dt, pool_used=main, total=total) == 150.0

    def test_isolates_when_idle(self):
        policy = SharedHeadroomPoolPolicy(queues_per_quadrant=8)
        dt = DynamicThresholdPolicy(alpha=1.0)
        assert limits_for(policy, pool_used=0.0) < limits_for(dt, pool_used=0.0)

    def test_headroom_exhaustion_clips_quota(self):
        policy = SharedHeadroomPoolPolicy(
            queues_per_quadrant=2, headroom_fraction=0.15, oversubscription=2.0
        )
        # Pool fully used: both main share and headroom grant collapse.
        assert limits_for(policy, pool_used=1000.0) == 0.0


class TestBatchKernelIdentity:
    """Each policy's vectorized ``limits_batch`` must be bit-identical to
    the per-run fallback loop (the acceptance bar for ``batch_limits``)."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_batch_matches_serial_loop(self, spec, rng):
        servers, quadrants, runs = 9, 4, 7
        policy = build_policy(
            spec, queues_per_quadrant=-(-servers // quadrants)
        )
        shared_total = 4 * 1024 * 1024.0
        quadrant = np.arange(servers) % quadrants
        pool_used = rng.uniform(0, shared_total, size=(runs, quadrants))
        queue_shared = rng.uniform(0, shared_total / servers, size=(runs, servers))
        active = rng.integers(0, 12, size=(runs, servers)).astype(np.float64)

        batched = policy.limits_batch(
            shared_total, pool_used, quadrant, queue_shared, active
        )
        looped = np.stack(
            [
                policy.limits(
                    shared_total, pool_used[run], quadrant, queue_shared[run], active[run]
                )
                for run in range(runs)
            ]
        )
        assert batched.shape == (runs, servers)
        assert np.array_equal(batched, looped), spec.name

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_base_fallback_agrees_when_flag_forced_off(self, spec, rng):
        """Flipping ``batch_limits`` off must not change a policy's
        numbers — the flag selects an implementation, not a model."""
        policy = build_policy(spec, queues_per_quadrant=3)
        shared_total = 1e6
        quadrant = np.array([0, 0, 1, 1, 2, 2])
        pool_used = rng.uniform(0, shared_total, size=(4, 3))
        queue_shared = rng.uniform(0, shared_total / 6, size=(4, 6))
        active = rng.integers(0, 9, size=(4, 6)).astype(np.float64)
        fast = policy.limits_batch(
            shared_total, pool_used, quadrant, queue_shared, active
        )
        policy.batch_limits = False
        slow = policy.limits_batch(
            shared_total, pool_used, quadrant, queue_shared, active
        )
        assert np.array_equal(fast, slow), spec.name
