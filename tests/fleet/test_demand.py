"""Tests for the demand synthesis model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import SimulationError
from repro.fleet.demand import DemandModel
from repro.workload.region import REGION_A, build_region_workloads
from repro.workload.services import service_by_name

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL


@pytest.fixture
def workload(rng):
    return build_region_workloads(REGION_A, racks=4, rng=rng)[0]


class TestDemandModel:
    def test_shapes(self, workload, rng):
        model = DemandModel()
        demand = model.generate(workload, hour=6, buckets=500, rng=rng)
        servers = workload.placement.servers
        assert demand.demand.shape == (500, servers)
        assert demand.connections.shape == (500, servers)
        assert demand.persistence.shape == (servers,)
        assert demand.initial_multiplier.shape == (servers,)

    def test_non_negative(self, workload, rng):
        demand = DemandModel().generate(workload, hour=6, buckets=500, rng=rng)
        assert demand.demand.min() >= 0
        assert demand.connections.min() >= 0

    def test_persistent_services_start_adapted(self, workload, rng):
        demand = DemandModel().generate(workload, hour=6, buckets=100, rng=rng)
        for index, spec in enumerate(workload.placement.services):
            if spec.sender_persistence >= 1.0:
                assert demand.initial_multiplier[index] < 1.0
                assert demand.initial_alpha[index] > 0.0
            else:
                assert demand.initial_multiplier[index] == 1.0
                assert demand.initial_alpha[index] == 0.0

    def test_baseline_never_bursty(self, rng):
        """Baseline-only servers (no active episode) must stay under the
        50% burst threshold."""
        workload = build_region_workloads(REGION_A, racks=4, rng=rng)[0]
        # Force zero active episodes by monkeypatching the rng draw is
        # fragile; instead check quiet servers statistically: with many
        # servers some are inactive, and their columns stay sub-threshold.
        demand = DemandModel().generate(workload, hour=3, buckets=1000, rng=rng)
        utilization = demand.demand / DRAIN
        quiet_columns = utilization.max(axis=0) < 0.5
        assert quiet_columns.any()  # some servers are inactive
        # Quiet columns still carry baseline traffic.
        assert demand.demand[:, quiet_columns].sum() > 0

    def test_invalid_hour_bucket_args(self, workload, rng):
        model = DemandModel()
        with pytest.raises(SimulationError):
            model.generate(workload, hour=6, buckets=0, rng=rng)

    def test_deterministic_given_seed(self, workload):
        a = DemandModel().generate(workload, 6, 200, np.random.default_rng(9))
        b = DemandModel().generate(workload, 6, 200, np.random.default_rng(9))
        np.testing.assert_array_equal(a.demand, b.demand)

    def test_diurnal_load_scales_demand(self, workload):
        model = DemandModel()
        busy_hour = workload.diurnal.busiest_hour()
        quiet_hour = (busy_hour + 12) % 24
        busy_total = np.mean(
            [
                model.generate(workload, busy_hour, 500, np.random.default_rng(s)).demand.sum()
                for s in range(8)
            ]
        )
        quiet_total = np.mean(
            [
                model.generate(workload, quiet_hour, 500, np.random.default_rng(s)).demand.sum()
                for s in range(8)
            ]
        )
        assert busy_total > quiet_total

    def test_connections_rise_inside_bursts(self, workload, rng):
        demand = DemandModel().generate(workload, 6, 1000, rng)
        utilization = demand.demand / DRAIN
        bursty = utilization > 0.5
        if bursty.any() and (~bursty).any():
            inside = demand.connections[bursty].mean()
            outside = demand.connections[~bursty].mean()
            assert inside > outside


class TestBurstProfile:
    def test_volume_conserved(self):
        model = DemandModel()
        profile = model._burst_profile(volume=5e6, intensity=0.8, overshoot=1.5)
        assert profile.sum() == pytest.approx(5e6)

    def test_overshoot_front_loads(self):
        model = DemandModel()
        profile = model._burst_profile(volume=20e6, intensity=0.8, overshoot=2.0)
        assert profile[0] > profile[-2]

    def test_no_overshoot_flat_body(self):
        model = DemandModel()
        profile = model._burst_profile(volume=10e6, intensity=0.8, overshoot=1.0)
        body = profile[:-1]
        assert np.allclose(body, body[0])


def _burst_profile_reference(model, volume, intensity, overshoot):
    """The historical bucket-by-bucket loop, pinned verbatim so the
    closed-form replacement is provably bit-identical to it."""
    body_rate = intensity * model.drain
    rates = []
    remaining = volume
    bucket = 0
    while remaining > 0:
        if bucket < model.overshoot_buckets:
            decay = 0.5**bucket
            rate = body_rate * (1.0 + (overshoot - 1.0) * decay)
        else:
            rate = body_rate
        take = min(remaining, rate)
        rates.append(take)
        remaining -= take
        bucket += 1
        if bucket > 10_000:
            raise SimulationError("burst profile failed to terminate")
    return np.array(rates)


class TestBurstProfileClosedForm:
    """The vectorized profile must equal the historical loop exactly —
    same buckets, same floating-point remainders, same failure mode."""

    @given(
        volume=st.floats(min_value=1.0, max_value=1e9),
        intensity=st.floats(min_value=0.05, max_value=8.0),
        overshoot=st.floats(min_value=0.1, max_value=4.0),
        overshoot_buckets=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=200)
    def test_matches_reference_loop(self, volume, intensity, overshoot, overshoot_buckets):
        model = DemandModel(overshoot_buckets=overshoot_buckets)
        try:
            expected = _burst_profile_reference(model, volume, intensity, overshoot)
        except SimulationError:
            # Profiles needing more than 10,000 buckets fail in both.
            with pytest.raises(SimulationError):
                model._burst_profile(volume, intensity, overshoot)
            return
        actual = model._burst_profile(volume, intensity, overshoot)
        assert np.array_equal(actual, expected)

    def test_zero_volume_is_empty(self):
        model = DemandModel()
        assert len(model._burst_profile(0.0, 0.8, 1.5)) == 0
        assert len(_burst_profile_reference(model, 0.0, 0.8, 1.5)) == 0

    def test_exact_multiple_of_rate(self):
        """Volume landing exactly on a bucket boundary (no fractional
        remainder) keeps the same bucket count as the loop."""
        model = DemandModel(overshoot_buckets=1)
        rate = 0.5 * model.drain
        expected = _burst_profile_reference(model, 7 * rate, 0.5, 1.0)
        actual = model._burst_profile(7 * rate, 0.5, 1.0)
        assert np.array_equal(actual, expected)

    def test_nonterminating_profile_raises_like_loop(self):
        """A volume the body rate cannot drain in 10,000 buckets raises
        in both implementations."""
        model = DemandModel()
        tiny = 1e-12 * model.drain
        with pytest.raises(SimulationError):
            _burst_profile_reference(model, model.drain, tiny, 1.0)
        with pytest.raises(SimulationError):
            model._burst_profile(model.drain, tiny, 1.0)


class TestSerialization:
    def test_serialize_separates_overlaps(self):
        model = DemandModel()
        spec = service_by_name("ml_trainer")
        starts = np.array([10, 10, 10, 10])
        serialized = model._serialize_starts(starts, spec, buckets=1000)
        assert len(set(serialized.tolist())) == len(serialized)

    def test_serialize_keeps_separated_starts(self):
        model = DemandModel()
        spec = service_by_name("ml_trainer")
        starts = np.array([10, 500, 900])
        serialized = model._serialize_starts(starts, spec, buckets=1000)
        assert serialized.tolist() == [10, 500, 900]

    def test_serialize_drops_starts_past_run(self):
        model = DemandModel()
        spec = service_by_name("ml_trainer")
        starts = np.full(1000, 998)
        serialized = model._serialize_starts(starts, spec, buckets=1000)
        assert len(serialized) < len(starts)

    def test_invalid_sync_fractions_rejected(self):
        with pytest.raises(SimulationError):
            DemandModel(shared_task_sync=0.9, rack_sync=0.2)
        with pytest.raises(SimulationError):
            DemandModel(rack_sync=-0.1)
