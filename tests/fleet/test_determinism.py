"""Reproducibility guarantees.

DESIGN.md promises bit-for-bit reproducible experiments given a seed.
Two historical bugs motivated these tests: seeding region RNGs with
Python's salted ``hash()``, and iterating a *set* of task names while
consuming RNG draws — both made "the same dataset" differ between
processes.  The cross-process test pins a checksum computed under two
different ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys


from repro.config import FleetConfig
from repro.fleet.dataset import generate_region_dataset
from repro.workload.region import REGION_A

_CHECKSUM_SNIPPET = """
import json
import numpy as np
from repro.config import FleetConfig
from repro.fleet.dataset import generate_region_dataset
from repro.workload.region import REGION_A

config = FleetConfig(racks_per_region=3, runs_per_rack=2, seed=123)
dataset = generate_region_dataset(REGION_A, config)
checksum = {
    "contention": [round(s.contention.mean, 12) for s in dataset.summaries],
    "bursts": [len(s.bursts) for s in dataset.summaries],
    "volume": round(sum(s.total_in_bytes for s in dataset.summaries), 3),
}
print(json.dumps(checksum))
"""


def _subprocess_checksum(hash_seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    output = subprocess.run(
        [sys.executable, "-c", _CHECKSUM_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


class TestCrossProcessDeterminism:
    def test_dataset_independent_of_hash_salt(self):
        """Identical seeds must give identical datasets regardless of
        the interpreter's string-hash salt."""
        first = _subprocess_checksum("0")
        second = _subprocess_checksum("4242")
        assert first == second


class TestInProcessDeterminism:
    def test_same_seed_same_dataset(self):
        config = FleetConfig(racks_per_region=2, runs_per_rack=2, seed=9)
        a = generate_region_dataset(REGION_A, config)
        b = generate_region_dataset(REGION_A, config)
        assert [s.contention.mean for s in a.summaries] == [
            s.contention.mean for s in b.summaries
        ]
        assert [len(s.bursts) for s in a.summaries] == [
            len(s.bursts) for s in b.summaries
        ]

    def test_different_seed_different_dataset(self):
        a = generate_region_dataset(
            REGION_A, FleetConfig(racks_per_region=2, runs_per_rack=2, seed=1)
        )
        b = generate_region_dataset(
            REGION_A, FleetConfig(racks_per_region=2, runs_per_rack=2, seed=2)
        )
        assert [s.contention.mean for s in a.summaries] != [
            s.contention.mean for s in b.summaries
        ]
