"""Native fluid kernel vs the numpy oracle: exact equality, always.

The native kernel (:mod:`repro.fleet.kernels.fluid`) promises *bit*
equality with the numpy paths — ``==``, not ``allclose`` — because
datasets must be byte-identical (same sha256 fingerprint, same cache
key) whichever kernel generated them.  Without numba installed the
kernel runs as plain Python (the identity-decorator fallback in
``kernels._numba``), which is the *same code* numba compiles, so this
suite pins the native semantics on every machine, numba or not.

The native path is forced through the ``kernel_choice`` seam (set
after construction), bypassing :func:`resolve_kernel`'s availability
probe: resolution decides *whether* native runs, never *what* it
computes.

Select the deterministic CI profile with HYPOTHESIS_PROFILE=ci.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import BufferConfig, FleetConfig, KERNEL_CHOICES
from repro.errors import ConfigError, SimulationError
from repro.fleet import kernels
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.policies import SharingPolicy, build_policy, registered_policy_specs

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL
ALL_SPECS = registered_policy_specs()
FIELDS = (
    "delivered",
    "delivered_retx",
    "ecn_marked",
    "dropped",
    "queue_occupancy",
    "rate_multiplier",
)


def native_model(servers: int, **kwargs) -> FluidBufferModel:
    """A model pinned to the native kernel code path, numba or not."""
    model = FluidBufferModel(servers=servers, **kwargs)
    model.kernel_choice = "native"
    return model


def assert_identical(native, oracle) -> None:
    for field in FIELDS:
        a, b = getattr(native, field), getattr(oracle, field)
        assert a.shape == b.shape, field
        assert np.array_equal(a, b), f"{field} differs between kernels"


def make_demand(rng, runs, buckets, servers):
    """Bursty demand: exponential background plus spikes that force
    drops, ECN marks, and the physical pool clamp."""
    demand = rng.exponential(0.4 * DRAIN, (runs, buckets, servers))
    demand[rng.random((runs, buckets, servers)) < 0.08] = 4.0 * DRAIN
    return demand


# -- the hypothesis sweep: all policies, random shapes and state -------------


@settings(max_examples=30, deadline=None)
@given(
    spec_index=st.integers(0, len(ALL_SPECS) - 1),
    seed=st.integers(0, 2**32 - 1),
    runs=st.integers(1, 3),
    buckets=st.integers(1, 40),
    servers=st.integers(1, 6),
    seeded_state=st.booleans(),
    responsive=st.booleans(),
    retransmit=st.booleans(),
    retx_delay=st.integers(1, 3),
)
def test_native_matches_numpy_all_policies(
    spec_index, seed, runs, buckets, servers, seeded_state,
    responsive, retransmit, retx_delay,
):
    spec = ALL_SPECS[spec_index]
    rng = np.random.default_rng(seed)
    num_quadrants = min(units.NUM_QUADRANTS, servers)
    kwargs = dict(
        policy=build_policy(
            spec, queues_per_quadrant=-(-servers // num_quadrants)
        ),
        responsive_sources=responsive,
        retransmit_losses=retransmit,
        retx_delay_steps=retx_delay,
    )
    demand = make_demand(rng, runs, buckets, servers)
    persistence = rng.uniform(0.001, 0.05, (runs, servers))
    initial_m = rng.uniform(0.05, 1.0, (runs, servers)) if seeded_state else None
    initial_alpha = rng.uniform(0.0, 1.0, (runs, servers)) if seeded_state else None
    lengths = rng.integers(1, buckets + 1, runs)

    oracle = FluidBufferModel(servers=servers, **kwargs).run_batch(
        demand, persistence, initial_m, initial_alpha, lengths=lengths
    )
    native = native_model(servers, **kwargs).run_batch(
        demand, persistence, initial_m, initial_alpha, lengths=lengths
    )
    assert_identical(native, oracle)
    for run in range(runs):
        assert_identical(native.per_run(run), oracle.per_run(run))


@settings(max_examples=20, deadline=None)
@given(
    spec_index=st.integers(0, len(ALL_SPECS) - 1),
    seed=st.integers(0, 2**32 - 1),
    buckets=st.integers(1, 60),
    servers=st.integers(1, 6),
)
def test_native_matches_numpy_scalar_run(spec_index, seed, buckets, servers):
    spec = ALL_SPECS[spec_index]
    rng = np.random.default_rng(seed)
    num_quadrants = min(units.NUM_QUADRANTS, servers)
    policy = build_policy(spec, queues_per_quadrant=-(-servers // num_quadrants))
    demand = make_demand(rng, 1, buckets, servers)[0]
    persistence = rng.uniform(0.001, 0.05, servers)

    oracle = FluidBufferModel(servers=servers, policy=policy).run(demand, persistence)
    native = native_model(servers, policy=policy).run(demand, persistence)
    assert_identical(native, oracle)


# -- edge cases --------------------------------------------------------------


def test_zero_bucket_run_is_empty_on_both_kernels():
    servers = 3
    demand = np.zeros((0, servers))
    persistence = np.full(servers, 0.01)
    oracle = FluidBufferModel(servers=servers).run(demand, persistence)
    native = native_model(servers).run(demand, persistence)
    assert oracle.delivered.shape == (0, servers)
    assert_identical(native, oracle)


def test_zero_server_rack_rejected_by_both_kernels():
    for kernel in ("numpy", "native"):
        with pytest.raises(SimulationError):
            FluidBufferModel(servers=0, kernel=kernel)


def test_unregistered_policy_falls_back_to_numpy():
    """A custom policy without a native limit rule runs the numpy path
    even when the native kernel was selected — and stays the oracle."""

    class HalfPoolPolicy(SharingPolicy):
        name = "half-pool-test"
        batch_limits = True

        def limits(self, shared_total, pool_used, quadrant,
                   queue_shared_used, active_steps):
            free = np.maximum(shared_total - pool_used, 0.0)
            return 0.5 * free[..., quadrant]

    policy = HalfPoolPolicy()
    assert policy.native_kernel_id is None
    model = native_model(4, policy=policy)
    assert not model.native_supported
    assert model.effective_kernel == "numpy"

    rng = np.random.default_rng(3)
    demand = make_demand(rng, 2, 30, 4)
    persistence = np.full(4, 0.01)
    fallback = model.run_batch(demand, persistence)
    oracle = FluidBufferModel(servers=4, policy=HalfPoolPolicy()).run_batch(
        demand, persistence
    )
    assert_identical(fallback, oracle)


def test_resumed_state_round_trip():
    """Resume semantics: seeding run B with state arrays (per-server
    and per-run shapes) is kernel-independent."""
    servers = 4
    rng = np.random.default_rng(9)
    demand_a = make_demand(rng, 2, 25, servers)
    demand_b = make_demand(rng, 2, 25, servers)
    persistence = rng.uniform(0.001, 0.05, servers)
    m0 = rng.uniform(0.05, 1.0, servers)  # (servers,) broadcast shape
    a0 = rng.uniform(0.0, 1.0, servers)

    oracle_model = FluidBufferModel(servers=servers)
    native = native_model(servers)

    first_o = oracle_model.run_batch(demand_a, persistence, m0, a0)
    first_n = native.run_batch(demand_a, persistence, m0, a0)
    assert_identical(first_n, first_o)

    # (runs, servers) resumed state, straight out of the first pass.
    m1 = first_o.rate_multiplier[:, -1, :]
    second_o = oracle_model.run_batch(demand_b, persistence, m1, a0)
    second_n = native.run_batch(demand_b, persistence, m1, a0)
    assert_identical(second_n, second_o)


# -- selection, resolution, and the execution-only contract ------------------


def test_resolve_kernel_contract():
    assert kernels.resolve_kernel("numpy") == "numpy"
    resolved = kernels.resolve_kernel("auto")
    assert resolved == ("native" if kernels.NATIVE_AVAILABLE else "numpy")
    assert kernels.resolve_kernel("native") == resolved
    with pytest.raises(ConfigError):
        kernels.resolve_kernel("fortran")


def test_native_request_without_numba_degrades_with_counter():
    if kernels.NATIVE_AVAILABLE:
        pytest.skip("numba installed; degradation path not reachable")
    kernels._warned_unavailable = False
    kernels._pending.clear()
    assert kernels.resolve_kernel("native") == "numpy"
    from repro.obs.metrics import Metrics

    metrics = Metrics()
    kernels.consume_pending(metrics)
    counters = metrics.snapshot()["counters"]
    assert counters.get(kernels.NATIVE_UNAVAILABLE_COUNTER, 0) >= 1
    # Warn-once: a second resolve stages nothing new.
    assert kernels.resolve_kernel("native") == "numpy"
    kernels.consume_pending(metrics)
    assert (
        metrics.snapshot()["counters"][kernels.NATIVE_UNAVAILABLE_COUNTER]
        == counters[kernels.NATIVE_UNAVAILABLE_COUNTER]
    )


def test_kernel_axis_is_execution_only():
    from repro.fleet.cache import dataset_cache_key
    from repro.workload.region import REGION_A

    keys = {
        dataset_cache_key(REGION_A, FleetConfig(kernel=kernel))
        for kernel in KERNEL_CHOICES
    }
    assert len(keys) == 1, "kernel choice must not change the dataset cache key"


def test_fleet_config_validates_kernel():
    with pytest.raises(ConfigError):
        FleetConfig(kernel="cython")
    for kernel in KERNEL_CHOICES:
        assert FleetConfig(kernel=kernel).kernel == kernel


def test_synthesizer_records_effective_kernel():
    from repro.fleet.rackrun import RackRunSynthesizer
    from repro.obs.metrics import Metrics
    from repro.workload.region import REGION_A, build_region_workloads

    workloads = build_region_workloads(
        REGION_A, racks=1, rng=np.random.default_rng(5)
    )
    metrics = Metrics()
    runs = RackRunSynthesizer().synthesize_batch(
        [(workloads[0], 3, np.random.SeedSequence(5))], metrics=metrics
    )
    assert len(runs) == 1
    counters = metrics.snapshot()["counters"]
    expected = kernels.resolve_kernel("auto")
    assert counters.get(f"synthesis.fluid.kernel.{expected}") == 1
