"""Tests for alternative buffer-sharing policies."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.policies import (
    CompleteSharingPolicy,
    DynamicThresholdPolicy,
    EnhancedDynamicThresholdPolicy,
    FlowAwareThresholdPolicy,
    StaticPartitionPolicy,
    standard_policies,
)

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL


def limits_for(policy, pool_used=0.0, queue_used=0.0, active=0.0):
    return policy.limits(
        shared_total=1000.0,
        pool_used=np.array([pool_used]),
        quadrant=np.array([0]),
        queue_shared_used=np.array([queue_used]),
        active_steps=np.array([active]),
    )[0]


class TestPolicyRules:
    def test_dt_matches_formula(self):
        policy = DynamicThresholdPolicy(alpha=1.0)
        assert limits_for(policy, pool_used=400.0) == 600.0

    def test_dt_invalid_alpha(self):
        with pytest.raises(SimulationError):
            DynamicThresholdPolicy(alpha=0)

    def test_static_partition_fixed(self):
        policy = StaticPartitionPolicy(queues_per_quadrant=4)
        assert limits_for(policy, pool_used=0.0) == 250.0
        assert limits_for(policy, pool_used=999.0) == 250.0

    def test_complete_sharing_unbounded(self):
        policy = CompleteSharingPolicy()
        assert limits_for(policy, pool_used=999.0) == 1000.0

    def test_edt_exceeds_dt_when_queue_holds_bytes(self):
        dt = DynamicThresholdPolicy(alpha=1.0)
        edt = EnhancedDynamicThresholdPolicy(alpha=1.0, burst_fraction=0.5)
        # Pool half full: DT limit 500; EDT grants queue_used + 0.5*free.
        assert limits_for(edt, pool_used=500.0, queue_used=450.0) >= limits_for(
            dt, pool_used=500.0
        )

    def test_flow_aware_mice_get_more(self):
        policy = FlowAwareThresholdPolicy(mice_alpha=4.0, elephant_alpha=0.5, mice_steps=4)
        mice = limits_for(policy, pool_used=500.0, active=2)
        elephant = limits_for(policy, pool_used=500.0, active=100)
        assert mice > elephant

    def test_standard_policies_distinct_names(self):
        names = [p.name for p in standard_policies(4)]
        assert len(names) == len(set(names))


class TestPoliciesInFluidModel:
    def _bursty_demand(self, servers=8, seed=0):
        rng = np.random.default_rng(seed)
        demand = np.zeros((300, servers))
        for s in range(servers):
            for start in rng.integers(0, 290, size=10):
                demand[start : start + 3, s] += 2.0 * DRAIN
        return demand

    def _loss(self, policy, servers=8):
        model = FluidBufferModel(servers=servers, policy=policy)
        demand = self._bursty_demand(servers)
        result = model.run(demand, np.full(servers, 0.05))
        return result.total_dropped

    def test_static_partition_worst_for_bursts(self):
        """Hard slicing cannot absorb bursts: it must lose at least as
        much as dynamic sharing on bursty traffic."""
        dt_loss = self._loss(DynamicThresholdPolicy(alpha=1.0))
        static_loss = self._loss(StaticPartitionPolicy(queues_per_quadrant=2))
        assert static_loss >= dt_loss

    def test_complete_sharing_absorbs_most(self):
        dt_loss = self._loss(DynamicThresholdPolicy(alpha=1.0))
        cs_loss = self._loss(CompleteSharingPolicy())
        assert cs_loss <= dt_loss

    def test_edt_between_dt_and_complete_sharing(self):
        dt_loss = self._loss(DynamicThresholdPolicy(alpha=1.0))
        cs_loss = self._loss(CompleteSharingPolicy())
        edt_loss = self._loss(EnhancedDynamicThresholdPolicy())
        assert cs_loss <= edt_loss <= dt_loss * 1.05

    def test_pool_capacity_respected_by_all(self):
        for policy in standard_policies(2):
            model = FluidBufferModel(servers=8, num_quadrants=1, policy=policy)
            cfg = model.buffer_config
            demand = np.full((80, 8), 4 * DRAIN)
            result = model.run(demand, np.full(8, 0.05))
            limit = cfg.shared_bytes + 8 * cfg.dedicated_bytes_per_queue
            assert result.queue_occupancy.sum(axis=1).max() <= limit * 1.001, policy.name


class TestOpenLoopModes:
    def test_unresponsive_sources_keep_multiplier(self):
        model = FluidBufferModel(servers=2, responsive_sources=False)
        demand = np.zeros((50, 2))
        demand[5:20, :] = 3 * DRAIN
        result = model.run(demand, np.full(2, 0.05))
        assert np.all(result.rate_multiplier == 1.0)

    def test_no_retransmit_mode(self):
        model = FluidBufferModel(
            servers=8, responsive_sources=False, retransmit_losses=False
        )
        demand = np.zeros((50, 8))
        demand[5:9, :] = 6 * DRAIN
        result = model.run(demand, np.full(8, 0.05))
        assert result.total_dropped > 0
        assert result.delivered_retx.sum() == 0
