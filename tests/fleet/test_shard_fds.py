"""File-descriptor hygiene of the streaming shard consumers.

Every streamed aggregation memmaps each shard's two arrays; a frame
left unclosed leaks two fds per shard, so a few hundred shards exhaust
the default ulimit mid-report.  These tests regress the leak directly:
with >100 shards on disk, repeated full-store streaming passes must
leave the process fd count where it started.
"""

import os

import pytest

from repro.config import FleetConfig
from repro.fleet.shards import RegionShardStore
from repro.workload.region import REGION_A

from .test_failfast import FastSynthesizer

# 26 racks x 4 distinct run hours, sharded 1x1, is exactly 104 shards:
# every (rack, hour) with runs lands in its own shard file pair.
CONFIG = FleetConfig(racks_per_region=26, runs_per_rack=4, seed=47)


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    store = RegionShardStore(
        root=str(tmp_path_factory.mktemp("fd-store")),
        spec=REGION_A,
        config=CONFIG,
        shard_racks=1,
        shard_hours=1,
    )
    store.build(jobs=1, synthesizer=FastSynthesizer())
    return store.open()


def test_store_has_more_than_100_shards(sharded):
    shards = sharded.manifest["shards"]
    assert len(shards) == CONFIG.racks_per_region * CONFIG.runs_per_rack
    assert len(shards) > 100


def test_streaming_aggregations_do_not_leak_fds(sharded):
    aggregations = [
        ("table1", sharded.table1_row),
        ("hourly_boxes", sharded.hourly_boxes),
        ("run_contention", sharded.run_contention),
        ("burst_contention", sharded.burst_contention),
        ("rack_profiles", sharded.rack_profiles),
        ("hour_counts", sharded.hour_counts),
    ]
    # Warm one pass first: lazily-imported modules and pytest machinery
    # legitimately open a few fds the first time through.
    for _name, run in aggregations:
        run()
    baseline = _open_fds()
    # Two further full passes stream >600 shard merges; the fd count
    # must never drift above the post-warmup baseline (small slack for
    # allocator/introspection noise, far below 2 fds per shard).
    for _round in range(2):
        for name, run in aggregations:
            run()
            assert _open_fds() <= baseline + 4, (
                f"fd leak after streaming {name}: "
                f"{_open_fds()} open vs baseline {baseline}"
            )


def test_direct_frame_iteration_bounds_fds(sharded):
    baseline = _open_fds()
    streamed = 0
    for frame in sharded.iter_frames():
        try:
            assert frame.runs.shape[0] >= 1
            # While one frame is open at most its own two fds are extra.
            assert _open_fds() <= baseline + 2 + 4
        finally:
            frame.close()
        streamed += 1
    assert streamed > 100
    assert _open_fds() <= baseline + 4
