"""Tests for rack-run synthesis and dataset generation."""

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.core.run import SyncRun
from repro.errors import ConfigError, SimulationError
from repro.fleet.dataset import (
    generate_region_dataset,
    iter_region_summaries,
)
from repro.fleet.rackrun import RackRunSynthesizer, sketch_estimates
from repro.workload.region import REGION_A, build_region_workloads


@pytest.fixture
def workload(rng):
    return build_region_workloads(REGION_A, racks=3, rng=rng, servers_per_rack=24)[0]


class TestSketchEstimates:
    def test_zero_flows_estimate_zero(self, rng):
        estimates = sketch_estimates(np.zeros(10), rng)
        assert np.allclose(estimates, 0.0)

    def test_small_counts_nearly_exact(self, rng):
        estimates = sketch_estimates(np.full(200, 10.0), rng)
        assert abs(np.mean(estimates) - 10.0) < 2.0

    def test_saturation_for_huge_counts(self, rng):
        estimates = sketch_estimates(np.full(20, 10_000.0), rng)
        assert np.all(estimates >= 400)

    def test_monotone_in_expectation(self, rng):
        low = sketch_estimates(np.full(500, 20.0), rng).mean()
        high = sketch_estimates(np.full(500, 80.0), rng).mean()
        assert high > low


class TestRackRunSynthesizer:
    def test_produces_valid_sync_run(self, workload, rng):
        synthesizer = RackRunSynthesizer()
        sync_run = synthesizer.synthesize(workload, hour=6, rng=rng)
        assert isinstance(sync_run, SyncRun)
        assert sync_run.servers == 24
        assert sync_run.rack == workload.rack
        assert 100 <= sync_run.buckets <= 2000

    def test_run_length_near_paper_average(self, workload):
        """Section 5: trimmed runs average 1.85 s at 1 ms sampling."""
        synthesizer = RackRunSynthesizer()
        lengths = [
            synthesizer.synthesize(workload, 6, np.random.default_rng(s)).buckets
            for s in range(10)
        ]
        assert 1700 < np.mean(lengths) < 2000

    def test_utilization_never_exceeds_line_rate(self, workload, rng):
        sync_run = RackRunSynthesizer().synthesize(workload, 6, rng)
        for run in sync_run.runs:
            assert run.ingress_utilization().max() <= 1.0 + 1e-9

    def test_metadata_carries_tasks(self, workload, rng):
        sync_run = RackRunSynthesizer().synthesize(workload, 6, rng)
        tasks = {run.meta.task for run in sync_run.runs}
        assert tasks == set(workload.placement.tasks)
        assert sync_run.extras["distinct_tasks"] == workload.placement.distinct_tasks()

    def test_switch_counters_populated(self, workload, rng):
        sync_run = RackRunSynthesizer().synthesize(workload, 6, rng)
        assert sync_run.switch_ingress_bytes > 0
        assert sync_run.switch_discard_bytes >= 0

    def test_invalid_hour_rejected(self, workload, rng):
        with pytest.raises(SimulationError):
            RackRunSynthesizer().synthesize(workload, hour=24, rng=rng)

    def test_explicit_buckets_respected(self, workload, rng):
        sync_run = RackRunSynthesizer().synthesize(workload, 6, rng, buckets=333)
        assert sync_run.buckets == 333

    def test_retx_only_when_drops(self, workload, rng):
        sync_run = RackRunSynthesizer().synthesize(workload, 6, rng)
        total_retx = sum(run.in_retx_bytes.sum() for run in sync_run.runs)
        if sync_run.switch_discard_bytes == 0:
            assert total_retx == 0


class TestDatasetGeneration:
    def test_streaming_generation(self, rng):
        config = FleetConfig(racks_per_region=3, runs_per_rack=2, seed=1)
        pairs = list(iter_region_summaries(REGION_A, config))
        assert len(pairs) == 6
        racks = {summary.rack for summary, _ in pairs}
        assert len(racks) == 3

    def test_region_dataset_table1(self):
        config = FleetConfig(racks_per_region=3, runs_per_rack=2, seed=1)
        dataset = generate_region_dataset(REGION_A, config)
        row = dataset.table1_row()
        assert row.runs == 6
        assert row.server_runs == 6 * 92
        assert 0 < row.bursty_server_runs <= row.server_runs
        assert row.bursts > 0

    def test_rack_days_grouping(self):
        config = FleetConfig(racks_per_region=2, runs_per_rack=3, seed=1)
        dataset = generate_region_dataset(REGION_A, config)
        days = dataset.rack_days()
        assert len(days) == 2
        assert all(len(day.summaries) == 3 for day in days)

    def test_deterministic_given_seed(self):
        config = FleetConfig(racks_per_region=2, runs_per_rack=2, seed=7)
        a = generate_region_dataset(REGION_A, config)
        b = generate_region_dataset(REGION_A, config)
        assert [s.contention.mean for s in a.summaries] == [
            s.contention.mean for s in b.summaries
        ]

    def test_hours_spread_across_day(self):
        config = FleetConfig(racks_per_region=4, runs_per_rack=10, seed=2)
        dataset = generate_region_dataset(REGION_A, config)
        hours = {summary.hour for summary in dataset.summaries}
        assert len(hours) >= 10

    def test_too_many_runs_rejected(self):
        config = FleetConfig(racks_per_region=1, runs_per_rack=10, hours=5, seed=1)
        with pytest.raises(ConfigError):
            list(iter_region_summaries(REGION_A, config))

    def test_progress_callback_invoked(self):
        config = FleetConfig(racks_per_region=2, runs_per_rack=2, seed=1)
        calls = []
        generate_region_dataset(
            REGION_A, config, progress=lambda done, total: calls.append((done, total))
        )
        assert calls[-1] == (4, 4)


def assert_sync_runs_equal(a: SyncRun, b: SyncRun):
    assert a.rack == b.rack and a.region == b.region and a.hour == b.hour
    assert len(a.runs) == len(b.runs)
    for run_a, run_b in zip(a.runs, b.runs):
        assert run_a.meta == run_b.meta
        for field in (
            "in_bytes",
            "out_bytes",
            "in_retx_bytes",
            "out_retx_bytes",
            "in_ecn_bytes",
            "conn_estimate",
        ):
            assert np.array_equal(getattr(run_a, field), getattr(run_b, field)), field


class TestBatchSynthesis:
    """synthesize_batch must be byte-identical to per-item synthesize."""

    def test_batch_matches_per_item(self, rng):
        workloads = build_region_workloads(REGION_A, racks=3, rng=rng)
        synthesizer = RackRunSynthesizer()
        items = []
        for index, workload in enumerate(workloads):
            for hour in (2, 14):
                items.append((workload, hour, np.random.SeedSequence([index, hour])))
        batched = synthesizer.synthesize_batch(items)
        assert len(batched) == len(items)
        for (workload, hour, _), got in zip(items, batched):
            seed = np.random.SeedSequence(
                [workloads.index(workload), hour]
            )
            expected = synthesizer.synthesize(workload, hour, seed)
            assert_sync_runs_equal(expected, got)

    def test_batch_records_stage_timers(self, rng):
        from repro.obs.metrics import Metrics

        workloads = build_region_workloads(REGION_A, racks=1, rng=rng)
        metrics = Metrics()
        RackRunSynthesizer().synthesize_batch(
            [(workloads[0], 6, np.random.SeedSequence(3))], metrics=metrics
        )
        timers = metrics.snapshot()["timers"]
        for stage in ("synthesis/demand", "synthesis/fluid", "synthesis/assemble"):
            assert stage in timers and timers[stage]["count"] >= 1

    def test_fluid_batch_size_does_not_change_dataset(self):
        """The batch size is an execution knob: any value produces the
        same region-day, byte for byte."""
        datasets = []
        for fluid_batch in (1, 3, 16):
            config = FleetConfig(
                racks_per_region=2, runs_per_rack=3, seed=7, fluid_batch=fluid_batch
            )
            datasets.append(generate_region_dataset(REGION_A, config))
        for other in datasets[1:]:
            for a, b in zip(datasets[0].summaries, other.summaries):
                assert a.rack == b.rack and a.hour == b.hour
                assert a.contention.mean == b.contention.mean
                assert a.total_in_bytes == b.total_in_bytes

    def test_invalid_fluid_batch_rejected(self):
        with pytest.raises(ConfigError):
            FleetConfig(fluid_batch=0)

    def test_batch_rejects_bad_hour(self, rng):
        workloads = build_region_workloads(REGION_A, racks=1, rng=rng)
        with pytest.raises(SimulationError):
            RackRunSynthesizer().synthesize_batch(
                [(workloads[0], 99, np.random.SeedSequence(0))]
            )
