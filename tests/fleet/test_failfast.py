"""Failure semantics of the parallel fan-out substrate.

:func:`repro.fleet.parallel.run_windowed` owns three contracts that the
dataset, shard-store, and service paths all inherit:

* **fail-fast** — a poisoned rack fails the generation after O(window)
  completed units, not O(racks), surfacing as ``WorkerTaskError`` that
  names the failing rack;
* **crash containment** — a SIGKILLed worker breaks the pool; an owned
  pool retries the unfinished items exactly once on a fresh pool (and
  the retried dataset is bit-identical), a second break or an external
  pool raises ``WorkerCrashError``;
* **graceful drain** — a set ``cancel_event`` finishes in-flight work
  only and raises ``WorkerCancelled``.

The kill/poison synthesizers are module-level classes so they pickle
into pool workers; one-shot behaviour lives in sentinel files because
worker processes share no memory with the test.
"""

import dataclasses
import os
import signal

import pytest

from repro.config import FleetConfig
from repro.errors import (
    ConfigError,
    WorkerCancelled,
    WorkerCrashError,
    WorkerTaskError,
)
from repro.fleet.parallel import (
    generate_region_dataset_parallel,
    resolve_jobs,
    run_windowed,
)
from repro.fleet.rackrun import RackRunSynthesizer
from repro.obs.metrics import Metrics
from repro.workload.region import REGION_A

from .test_parallel_cache import fingerprint

CONFIG = FleetConfig(racks_per_region=20, runs_per_rack=2, seed=13)
JOBS = 2
WINDOW = 2 * JOBS  # run_windowed's default


class FastSynthesizer(RackRunSynthesizer):
    """Short trimmed runs: enough signal to compare, cheap to generate."""

    def __init__(self) -> None:
        super().__init__(trimmed_buckets_mean=120, trimmed_buckets_std=10)


class PoisonedSynthesizer(FastSynthesizer):
    """Raises for one specific rack, succeeds for every other."""

    def __init__(self, rack: str) -> None:
        super().__init__()
        self.rack = rack

    def synthesize_batch(self, items, metrics=None):
        if any(workload.rack == self.rack for workload, _hour, _rng in items):
            raise RuntimeError(f"poisoned rack {self.rack}")
        return super().synthesize_batch(items, metrics=metrics)


class KillSynthesizer(FastSynthesizer):
    """SIGKILLs its worker process for one rack.

    ``once_path`` (optional) makes the kill one-shot across pool
    incarnations: the first worker to reach the rack unlinks the
    sentinel and dies; after the retry the rack synthesizes normally.
    """

    def __init__(self, rack: str, once_path: str | None = None) -> None:
        super().__init__()
        self.rack = rack
        self.once_path = once_path

    def synthesize_batch(self, items, metrics=None):
        if any(workload.rack == self.rack for workload, _hour, _rng in items):
            if self.once_path is None:
                os.kill(os.getpid(), signal.SIGKILL)
            else:
                try:
                    os.unlink(self.once_path)  # atomic claim of the kill
                except FileNotFoundError:
                    pass
                else:
                    os.kill(os.getpid(), signal.SIGKILL)
        return super().synthesize_batch(items, metrics=metrics)


def _rack_name(index: int) -> str:
    from repro.fleet.dataset import plan_region

    return plan_region(REGION_A, CONFIG)[index].workload.rack


class TestFailFast:
    def test_poisoned_rack_fails_in_window_not_racks(self):
        poisoned_index = 2
        metrics = Metrics()
        with pytest.raises(WorkerTaskError) as excinfo:
            generate_region_dataset_parallel(
                REGION_A,
                CONFIG,
                jobs=JOBS,
                synthesizer=PoisonedSynthesizer(_rack_name(poisoned_index)),
                metrics=metrics,
            )
        assert f"rack {poisoned_index}" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The O(window) bound: racks completed before the failure
        # surfaced is at most the poisoned prefix plus two windows of
        # in-flight slack — nowhere near the 20 racks of the region.
        completed = metrics.counter("dataset.parallel.rack_days")
        assert completed <= poisoned_index + 2 * WINDOW
        assert completed < CONFIG.racks_per_region

    def test_task_error_cancels_queued_work(self):
        handled = []
        with pytest.raises(WorkerTaskError) as excinfo:
            run_windowed(
                list(range(50)),
                lambda executor, item: executor.submit(_fail_on_three, item),
                lambda item, result: handled.append(result),
                jobs=JOBS,
                label=lambda item: f"unit {item}",
            )
        assert excinfo.value.label == "unit 3"
        # The tasks here are near-instant, so completion/handling order is
        # nondeterministic under load and a tight window bound flakes; the
        # O(window) fail-fast bound is pinned deterministically (via the
        # rack-day counter) in test_poisoned_rack_fails_in_window_not_racks.
        # Here we pin the cancellation contract: queued work was abandoned,
        # not drained to completion.
        assert len(handled) < 50


class TestCrashContainment:
    def test_worker_kill_retried_once_bit_identical(self, tmp_path):
        sentinel = tmp_path / "kill-once"
        sentinel.write_text("armed")
        config = dataclasses.replace(CONFIG, racks_per_region=6)
        crashed = generate_region_dataset_parallel(
            REGION_A,
            config,
            jobs=JOBS,
            synthesizer=KillSynthesizer(_rack_name(3), once_path=str(sentinel)),
        )
        oracle = generate_region_dataset_parallel(
            REGION_A, config, jobs=JOBS, synthesizer=FastSynthesizer()
        )
        assert not sentinel.exists()  # the kill actually fired
        assert fingerprint(crashed) == fingerprint(oracle)

    def test_second_break_raises_worker_crash_error(self):
        config = dataclasses.replace(CONFIG, racks_per_region=6)
        rack = _rack_name(3)
        with pytest.raises(WorkerCrashError) as excinfo:
            generate_region_dataset_parallel(
                REGION_A, config, jobs=JOBS, synthesizer=KillSynthesizer(rack)
            )
        assert rack in " ".join(excinfo.value.suspects)

    def test_external_pool_never_retried(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(WorkerCrashError):
                run_windowed(
                    list(range(4)),
                    lambda executor, item: executor.submit(_kill_self, item),
                    lambda item, result: None,
                    jobs=1,
                    pool=pool,
                    label=lambda item: f"unit {item}",
                )

    def test_broken_pool_detected_at_submit_time(self):
        """A worker that died while the pool sat idle breaks the pool
        before any future exists; submit-side breakage must surface the
        same structured error, not a raw BrokenProcessPool."""
        import time
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            pid = pool.submit(os.getpid).result()  # force the worker to spawn
            os.kill(pid, signal.SIGKILL)
            # The executor's management thread marks the pool broken as
            # soon as it sees the dead sentinel; wait for that so the
            # breakage surfaces from submit(), not from a future.
            for _ in range(100):
                if pool._broken:
                    break
                time.sleep(0.05)
            assert pool._broken
            with pytest.raises(WorkerCrashError):
                run_windowed(
                    list(range(4)),
                    lambda executor, item: executor.submit(_identity, item),
                    lambda item, result: None,
                    jobs=1,
                    pool=pool,
                    label=lambda item: f"unit {item}",
                )


class TestGracefulDrain:
    def test_preset_cancel_event_starts_nothing(self):
        import threading

        event = threading.Event()
        event.set()
        handled = []
        with pytest.raises(WorkerCancelled) as excinfo:
            run_windowed(
                list(range(10)),
                lambda executor, item: executor.submit(_identity, item),
                lambda item, result: handled.append(result),
                jobs=JOBS,
                cancel_event=event,
            )
        assert handled == []
        assert "0/10" in str(excinfo.value)

    def test_cancelled_generation_raises(self):
        import threading

        event = threading.Event()
        event.set()
        with pytest.raises(WorkerCancelled):
            generate_region_dataset_parallel(
                REGION_A,
                dataclasses.replace(CONFIG, racks_per_region=4),
                jobs=JOBS,
                synthesizer=FastSynthesizer(),
                cancel_event=event,
            )


class TestResolveJobsReserved:
    def test_reserved_only_clamps_auto_mode(self):
        cores = os.cpu_count() or 1
        assert resolve_jobs(0) == max(1, cores)
        assert resolve_jobs(0, reserved=cores + 5) == 1  # floor of one worker
        assert resolve_jobs(4, reserved=2) == 4  # explicit counts untouched

    def test_negative_reserved_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0, reserved=-1)


def _identity(item):
    return item


def _fail_on_three(item):
    if item == 3:
        raise ValueError("boom")
    return item


def _kill_self(item):
    os.kill(os.getpid(), signal.SIGKILL)
