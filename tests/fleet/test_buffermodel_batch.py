"""Batched fluid kernel: exact equivalence with the serial reference.

The batch path is an optimization, not a remodel — ``run_batch`` must
produce bit-identical outputs to stacking per-run ``run()`` results,
for every sharing policy and for ragged run lengths.  These tests are
the contract that keeps the two code paths interchangeable.
"""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.policies import (
    SharingPolicy,
    build_policy,
    registered_policy_specs,
)

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL

# Every registered policy, at default parameters — a policy added to the
# registry is automatically held to the serial/batch equivalence contract.
ALL_POLICIES = [
    build_policy(spec, queues_per_quadrant=2) for spec in registered_policy_specs()
]


def make_batch(rng, runs=5, buckets=120, servers=6):
    """A batch of bursty demands with per-run persistence/initial state."""
    demand = rng.uniform(0, 0.4 * DRAIN, size=(runs, buckets, servers))
    # Synchronized slams in random windows so drops/ECN/retx all engage.
    for run in range(runs):
        start = int(rng.integers(0, buckets - 12))
        demand[run, start : start + 8, :] += rng.uniform(1.5, 6.0) * DRAIN
    persistence = rng.uniform(0, 1, size=(runs, servers))
    multiplier = rng.uniform(0.3, 1.0, size=(runs, servers))
    alpha = rng.uniform(0, 0.8, size=(runs, servers))
    return demand, persistence, multiplier, alpha


def assert_result_equal(serial, batched, label=""):
    for name in (
        "delivered",
        "delivered_retx",
        "ecn_marked",
        "dropped",
        "queue_occupancy",
        "rate_multiplier",
    ):
        assert np.array_equal(getattr(serial, name), getattr(batched, name)), (
            f"{label}: {name} diverged between serial and batch paths"
        )


class TestBatchEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: type(p).__name__)
    def test_batch_matches_stacked_serial_runs(self, policy, rng):
        model = FluidBufferModel(servers=6, policy=policy)
        demand, persistence, multiplier, alpha = make_batch(rng)
        batch = model.run_batch(
            demand, persistence, initial_multiplier=multiplier, initial_alpha=alpha
        )
        for run in range(demand.shape[0]):
            serial = model.run(
                demand[run],
                persistence[run],
                initial_multiplier=multiplier[run],
                initial_alpha=alpha[run],
            )
            assert_result_equal(serial, batch.per_run(run), type(policy).__name__)

    def test_ragged_lengths_match_serial(self, rng):
        """Padding a short run with zero demand must not change it."""
        model = FluidBufferModel(servers=4)
        demand, persistence, multiplier, alpha = make_batch(rng, runs=4, servers=4)
        lengths = np.array([120, 37, 85, 1])
        padded = demand.copy()
        for run, length in enumerate(lengths):
            padded[run, length:, :] = 0.0
        batch = model.run_batch(
            padded,
            persistence,
            initial_multiplier=multiplier,
            initial_alpha=alpha,
            lengths=lengths,
        )
        for run, length in enumerate(lengths):
            serial = model.run(
                demand[run, :length],
                persistence[run],
                initial_multiplier=multiplier[run],
                initial_alpha=alpha[run],
            )
            trimmed = batch.per_run(run)
            assert trimmed.delivered.shape[0] == length
            assert_result_equal(serial, trimmed, f"run {run} len {length}")

    def test_default_initial_state_matches_serial(self, rng):
        model = FluidBufferModel(servers=3)
        demand = rng.uniform(0, 1.2 * DRAIN, size=(3, 60, 3))
        persistence = rng.uniform(0, 1, size=(3, 3))
        batch = model.run_batch(demand, persistence)
        for run in range(3):
            serial = model.run(demand[run], persistence[run])
            assert_result_equal(serial, batch.per_run(run))

    def test_shared_initial_state_broadcasts(self, rng):
        """A (servers,) initial state applies identically to every run."""
        model = FluidBufferModel(servers=3)
        demand = rng.uniform(0, 1.1 * DRAIN, size=(2, 40, 3))
        persistence = rng.uniform(0, 1, size=(2, 3))
        multiplier = rng.uniform(0.4, 1.0, size=3)
        batch = model.run_batch(demand, persistence, initial_multiplier=multiplier)
        for run in range(2):
            serial = model.run(demand[run], persistence[run], initial_multiplier=multiplier)
            assert_result_equal(serial, batch.per_run(run))

    def test_fallback_policy_without_batch_limits(self, rng):
        """A policy that never opted into the batch-aware path still
        works via the per-run stacking fallback — and still matches."""

        class LoopedThreshold(SharingPolicy):
            name = "looped-dt"

            def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active):
                free = np.maximum(shared_total - pool_used, 0.0)
                return 0.5 * free[quadrant]

        assert LoopedThreshold.batch_limits is False
        model = FluidBufferModel(servers=4, policy=LoopedThreshold())
        demand, persistence, multiplier, alpha = make_batch(rng, runs=3, servers=4)
        batch = model.run_batch(
            demand, persistence, initial_multiplier=multiplier, initial_alpha=alpha
        )
        for run in range(3):
            serial = model.run(
                demand[run],
                persistence[run],
                initial_multiplier=multiplier[run],
                initial_alpha=alpha[run],
            )
            assert_result_equal(serial, batch.per_run(run), "fallback")


class TestBatchValidation:
    def test_demand_must_be_3d(self):
        model = FluidBufferModel(servers=2)
        with pytest.raises(SimulationError):
            model.run_batch(np.zeros((10, 2)), np.zeros((1, 2)))

    def test_negative_demand_rejected(self):
        model = FluidBufferModel(servers=2)
        demand = np.zeros((1, 10, 2))
        demand[0, 3, 1] = -1.0
        with pytest.raises(SimulationError):
            model.run_batch(demand, np.zeros((1, 2)))

    def test_server_mismatch_rejected(self):
        model = FluidBufferModel(servers=3)
        with pytest.raises(SimulationError):
            model.run_batch(np.zeros((1, 10, 2)), np.zeros((1, 2)))

    def test_bad_lengths_rejected(self):
        model = FluidBufferModel(servers=2)
        demand = np.zeros((2, 10, 2))
        persistence = np.zeros((2, 2))
        with pytest.raises(SimulationError):
            model.run_batch(demand, persistence, lengths=np.array([10, 0]))
        with pytest.raises(SimulationError):
            model.run_batch(demand, persistence, lengths=np.array([10, 11]))

    def test_per_run_out_of_range(self, rng):
        model = FluidBufferModel(servers=2)
        batch = model.run_batch(
            rng.uniform(0, DRAIN, size=(2, 10, 2)), np.zeros((2, 2))
        )
        assert batch.runs == 2
        with pytest.raises(IndexError):
            batch.per_run(2)
