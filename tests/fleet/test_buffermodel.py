"""Tests for the fluid dynamic-threshold buffer model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import SimulationError
from repro.fleet.buffermodel import FluidBufferModel

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL


def make_model(servers=4, **kwargs) -> FluidBufferModel:
    return FluidBufferModel(servers=servers, **kwargs)


def fresh(servers):
    return np.full(servers, 0.05)


class TestBasicFlow:
    def test_sub_line_rate_traffic_passes_untouched(self):
        model = make_model(servers=2)
        demand = np.full((50, 2), 0.3 * DRAIN)
        result = model.run(demand, fresh(2))
        np.testing.assert_allclose(result.delivered, demand)
        assert result.total_dropped == 0
        assert result.queue_occupancy.max() == 0

    def test_delivery_capped_at_line_rate(self):
        model = make_model(servers=1)
        demand = np.zeros((10, 1))
        demand[0, 0] = 3 * DRAIN
        result = model.run(demand, fresh(1))
        assert result.delivered.max() <= DRAIN + 1e-6

    def test_volume_conservation_without_drops(self):
        """Everything offered is eventually delivered when nothing is
        dropped (queues drain after demand stops)."""
        model = make_model(servers=3)
        demand = np.zeros((100, 3))
        demand[10:20, :] = 1.4 * DRAIN  # burst above line rate, below DT
        result = model.run(demand, fresh(3))
        if result.total_dropped == 0:
            assert result.total_delivered == pytest.approx(demand.sum(), rel=1e-9)

    def test_dropped_bytes_are_retransmitted(self):
        """Drops re-enter as retransmissions and eventually deliver."""
        model = make_model(servers=8)
        demand = np.zeros((300, 8))
        demand[5:9, :] = 6 * DRAIN  # synchronized slam, forces drops
        result = model.run(demand, fresh(8))
        assert result.total_dropped > 0
        assert result.delivered_retx.sum() > 0
        # Conservation: delivered fresh bytes == demand (all retx cycles
        # back), within the run if it is long enough to drain.
        assert result.total_delivered == pytest.approx(demand.sum(), rel=1e-6)

    def test_retx_arrive_after_loss_bucket(self):
        model = make_model(servers=8)
        demand = np.zeros((50, 8))
        demand[5, :] = 8 * DRAIN
        result = model.run(demand, fresh(8))
        first_drop = int(np.argmax(result.dropped.sum(axis=1) > 0))
        first_retx = int(np.argmax(result.delivered_retx.sum(axis=1) > 0))
        assert first_retx > first_drop


class TestDynamicThreshold:
    def test_contention_shrinks_headroom(self):
        """The same burst survives alone but loses when neighbors fill
        the shared pool — the paper's core buffer mechanism."""
        def run_with_competitors(active: int) -> float:
            model = make_model(servers=8)
            demand = np.zeros((60, 8))
            demand[5:8, 0] = 3.0 * DRAIN  # the victim burst
            for other in range(1, active + 1):
                demand[4:9, other] = 3.0 * DRAIN
            result = model.run(demand, fresh(8))
            return float(result.dropped[:, 0].sum())

        alone = run_with_competitors(0)
        crowded = run_with_competitors(6)
        assert crowded > alone

    def test_queue_occupancy_bounded_by_pool(self):
        model = make_model(servers=4, num_quadrants=1)
        config = model.buffer_config
        demand = np.full((100, 4), 5 * DRAIN)
        result = model.run(demand, fresh(4))
        pool_limit = config.shared_bytes + 4 * config.dedicated_bytes_per_queue
        total_occupancy = result.queue_occupancy.sum(axis=1)
        assert total_occupancy.max() <= pool_limit * 1.01

    def test_ecn_marks_when_queue_exceeds_threshold(self):
        model = make_model(servers=2)
        demand = np.zeros((30, 2))
        demand[2:10, 0] = 1.5 * DRAIN  # builds ~780KB queue
        result = model.run(demand, fresh(2))
        assert result.ecn_marked.sum() > 0

    def test_no_marks_below_threshold(self):
        model = make_model(servers=2)
        demand = np.full((30, 2), 0.9 * DRAIN)  # never queues
        result = model.run(demand, fresh(2))
        assert result.ecn_marked.sum() == 0


class TestSourceAdaptation:
    def test_adapted_senders_throttle_and_avoid_loss(self):
        """Persistent (adapted) senders offered the same overload lose
        far less than fresh senders — the Section 8.1 inversion."""
        servers = 8
        demand = np.zeros((400, servers))
        for start in range(20, 380, 40):
            demand[start : start + 4, :] = 2.5 * DRAIN

        fresh_model = make_model(servers=servers)
        fresh_result = fresh_model.run(demand, np.full(servers, 0.05))

        adapted_model = make_model(servers=servers)
        adapted_result = adapted_model.run(
            demand,
            np.full(servers, 30.0),
            initial_multiplier=np.full(servers, 0.15),
            initial_alpha=np.full(servers, 0.5),
        )
        assert adapted_result.total_dropped < 0.5 * fresh_result.total_dropped

    def test_fresh_senders_reset_to_full_window(self):
        model = make_model(servers=1)
        demand = np.zeros((200, 1))
        demand[5:10, 0] = 4 * DRAIN  # first burst: drops, m collapses
        demand[150:155, 0] = 4 * DRAIN  # second burst after a long gap
        result = model.run(demand, np.full(1, 0.05))
        # After the 140 ms quiet gap (>> 50 ms persistence) the senders
        # are fresh: the second burst slams in at a full window and gets
        # dropped again, unlike an adapted pool which would pace it.
        assert result.rate_multiplier[140, 0] < 0.9  # still throttled pre-gap-end
        assert result.dropped[150:156, 0].sum() > 0

    def test_persistent_senders_stay_adapted_across_gaps(self):
        model = make_model(servers=1)
        demand = np.zeros((200, 1))
        demand[5:10, 0] = 4 * DRAIN
        demand[150:155, 0] = 4 * DRAIN
        result = model.run(demand, np.full(1, 30.0))
        m_after_first = result.rate_multiplier[20, 0]
        # Just before the second burst the multiplier is still near its
        # post-adaptation level — no reset to 1.0 occurred.
        assert result.rate_multiplier[149, 0] <= m_after_first + 0.15
        assert result.rate_multiplier[149, 0] < 0.5

    def test_multiplier_bounds(self):
        model = make_model(servers=4)
        demand = np.abs(np.random.default_rng(0).normal(0, 2 * DRAIN, (300, 4)))
        result = model.run(demand, fresh(4))
        assert result.rate_multiplier.min() >= 0.05
        assert result.rate_multiplier.max() <= 1.0


class TestValidation:
    def test_bad_demand_shape_rejected(self):
        model = make_model(servers=2)
        with pytest.raises(SimulationError):
            model.run(np.zeros((10, 3)), fresh(2))
        with pytest.raises(SimulationError):
            model.run(np.zeros(10), fresh(2))

    def test_negative_demand_rejected(self):
        model = make_model(servers=1)
        with pytest.raises(SimulationError):
            model.run(np.full((5, 1), -1.0), fresh(1))

    def test_persistence_shape_rejected(self):
        model = make_model(servers=2)
        with pytest.raises(SimulationError):
            model.run(np.zeros((5, 2)), fresh(3))

    def test_zero_servers_rejected(self):
        with pytest.raises(SimulationError):
            FluidBufferModel(servers=0)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_conservation_invariant(self, seed):
        """delivered + dropped-not-yet-retransmitted + queued + backlog
        accounts for all offered bytes: nothing is created or lost."""
        rng = np.random.default_rng(seed)
        servers = 4
        model = make_model(servers=servers)
        demand = rng.exponential(0.4 * DRAIN, (120, servers))
        demand[rng.random((120, servers)) < 0.05] = 3 * DRAIN
        result = model.run(demand, fresh(servers))
        # Delivered can never exceed what was offered.
        assert result.total_delivered <= demand.sum() + 1e-6
        # All series non-negative.
        for series in (result.delivered, result.dropped, result.ecn_marked,
                       result.queue_occupancy, result.delivered_retx):
            assert series.min() >= -1e-9
        # Retx delivered never exceeds what was dropped.
        assert result.delivered_retx.sum() <= result.dropped.sum() + 1e-6
