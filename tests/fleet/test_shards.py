"""The sharded out-of-core region store (repro.fleet.shards).

The store's contract has three legs, each tested here against the
legacy in-memory path as the oracle:

* **Bit-exactness** — every aggregation computed shard-by-shard equals
  the monolithic in-memory result exactly, for any shard geometry, any
  job count, and on reload from an existing store.
* **Out-of-core** — aggregating streams one shard at a time; peak
  traced memory stays well below materializing the whole region.
* **Corruption tolerance** — a missing, truncated, or stale store is a
  miss (rebuilt), never an exception or silently wrong data.
"""

import json
import os
import pickle
import tracemalloc

import numpy as np
import pytest

from repro.analysis.diurnal import hourly_box_stats
from repro.analysis.racks import rack_profiles
from repro.analysis.streaming import (
    burst_contention_from_summaries,
    run_contention_from_summaries,
)
from repro.config import FleetConfig
from repro.errors import ConfigError
from repro.fleet.dataset import generate_region_dataset, plan_region
from repro.fleet.shards import (
    RUN_COLUMNS,
    RegionShardStore,
    ShardedRegionDataset,
    generate_region_shards,
    plan_region_shards,
)
from repro.workload.region import REGION_A, REGION_B

CONFIG = FleetConfig(racks_per_region=6, runs_per_rack=3, seed=77)


@pytest.fixture(scope="module")
def oracle():
    return generate_region_dataset(REGION_A, CONFIG, jobs=1)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("shards"))


@pytest.fixture(scope="module")
def sharded(store_dir):
    """One store built serially, shared by the read-only tests."""
    return generate_region_shards(
        REGION_A, CONFIG, store_dir, shard_racks=2, shard_hours=8, jobs=1
    )


def assert_summaries_identical(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert left.rack == right.rack
        assert left.hour == right.hour
        assert left.contention == right.contention
        assert left.switch_discard_bytes == right.switch_discard_bytes
        assert len(left.bursts) == len(right.bursts)


class TestShardPlanning:
    def test_every_run_in_exactly_one_shard(self):
        plans, tasks = plan_region_shards(REGION_A, CONFIG, shard_racks=2, shard_hours=8)
        planned = {
            (plan.rack_index, run_index)
            for plan in plans
            for run_index in range(len(plan.hours))
        }
        sharded = [
            (plan.rack_index, run_index)
            for task in tasks
            for plan, indices in zip(task.plans, task.run_indices)
            for run_index in indices
        ]
        assert len(sharded) == len(set(sharded)) == len(planned)
        assert set(sharded) == planned

    def test_run_indices_index_the_full_schedule(self):
        """Hour-band slicing must keep original run indices, or the
        (rack, run) seed-stream leaves — hence the data — would shift."""
        plans, tasks = plan_region_shards(REGION_A, CONFIG, shard_racks=3, shard_hours=6)
        by_index = {plan.rack_index: plan for plan in plans}
        for task in tasks:
            for plan, indices in zip(task.plans, task.run_indices):
                for run_index in indices:
                    hour = by_index[plan.rack_index].hours[run_index]
                    assert task.key.hour_lo <= hour < task.key.hour_hi

    def test_zero_rack_region_plans_zero_shards(self):
        empty = FleetConfig(racks_per_region=0, runs_per_rack=3, seed=1)
        plans, tasks = plan_region_shards(REGION_A, empty)
        assert plans == [] and tasks == []

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(ConfigError):
            plan_region_shards(REGION_A, CONFIG, shard_racks=0)
        with pytest.raises(ConfigError):
            plan_region_shards(REGION_A, CONFIG, shard_hours=0)


class TestBitExactness:
    def test_summaries_in_global_order(self, oracle, sharded):
        assert_summaries_identical(oracle.summaries, sharded.summaries)

    def test_workloads_match(self, oracle, sharded):
        assert [w.rack for w in sharded.workloads] == [w.rack for w in oracle.workloads]

    def test_table1_row(self, oracle, sharded):
        assert sharded.table1_row() == oracle.table1_row()

    def test_rack_profiles(self, oracle, sharded):
        assert sharded.rack_profiles() == rack_profiles(oracle.summaries)

    def test_rack_profiles_hour_filtered(self, oracle, sharded):
        hours = {plan for plan in range(0, 24, 2)}
        assert sharded.rack_profiles(hours=hours) == rack_profiles(
            oracle.summaries, hours=hours
        )

    def test_hourly_boxes(self, oracle, sharded):
        assert sharded.hourly_boxes() == hourly_box_stats(oracle.summaries)

    def test_run_contention(self, oracle, sharded):
        expected = run_contention_from_summaries(oracle.summaries)
        actual = sharded.run_contention()
        assert actual.total == expected.total
        assert actual.excluded == expected.excluded
        assert np.array_equal(actual.mins, expected.mins)
        assert np.array_equal(actual.p90s, expected.p90s)

    def test_burst_contention(self, oracle, sharded):
        expected = burst_contention_from_summaries(oracle.summaries)
        actual = sharded.burst_contention()
        assert np.array_equal(actual.racks, expected.racks)
        assert np.array_equal(actual.max_contention, expected.max_contention)
        assert np.array_equal(actual.lossy, expected.lossy)
        assert np.array_equal(
            actual.first_loss_contention, expected.first_loss_contention
        )

    def test_other_geometry_same_results(self, oracle, store_dir):
        other = generate_region_shards(
            REGION_A, CONFIG, store_dir, shard_racks=5, shard_hours=24, jobs=1
        )
        assert other.table1_row() == oracle.table1_row()
        assert_summaries_identical(oracle.summaries, other.summaries)

    def test_parallel_build_identical(self, oracle, tmp_path):
        parallel = generate_region_shards(
            REGION_A, CONFIG, str(tmp_path), shard_racks=2, shard_hours=8, jobs=3
        )
        assert parallel.table1_row() == oracle.table1_row()
        assert_summaries_identical(oracle.summaries, parallel.summaries)

    def test_reload_hits_manifest_and_matches(self, oracle, sharded, store_dir):
        reloaded = generate_region_shards(
            REGION_A, CONFIG, store_dir, shard_racks=2, shard_hours=8, jobs=1
        )
        assert reloaded.store.metrics.counter("dataset.shards.hit") == 1
        assert reloaded.store.metrics.counter("dataset.shards.generated") == 0
        assert reloaded.table1_row() == oracle.table1_row()

    def test_to_region_dataset(self, oracle, sharded):
        materialized = sharded.to_region_dataset()
        assert materialized.table1_row() == oracle.table1_row()
        assert_summaries_identical(oracle.summaries, materialized.summaries)


class TestStoreLayout:
    def test_geometry_and_key_in_directory_name(self, sharded, store_dir):
        name = os.path.basename(sharded.store.directory)
        assert name.startswith("RegA-")
        assert name.endswith("-r2h8")

    def test_manifest_records_hashes_and_counts(self, sharded, oracle):
        manifest = sharded.manifest
        assert manifest["total_runs"] == len(oracle.summaries)
        assert sum(record["runs"] for record in manifest["shards"]) == len(
            oracle.summaries
        )
        assert manifest["run_columns"] == list(RUN_COLUMNS)
        for record in manifest["shards"]:
            assert set(record["files"]) == {"runs", "bursts", "summaries"}
            assert set(record["sha256"]) == {"runs", "bursts", "summaries"}
        assert sharded.store.verify_hashes(manifest)

    def test_no_tmp_files_left_behind(self, sharded):
        leftovers = [
            name
            for name in os.listdir(sharded.store.directory)
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_zero_rack_region_builds_empty_store(self, tmp_path):
        empty = FleetConfig(racks_per_region=0, runs_per_rack=3, seed=1)
        dataset = generate_region_shards(REGION_A, empty, str(tmp_path), jobs=1)
        assert dataset.manifest["shards"] == []
        assert dataset.summaries == []
        assert dataset.workloads == []
        assert dataset.table1_row().runs == 0


class TestCorruptionTolerance:
    def make_store(self, tmp_path) -> RegionShardStore:
        store = RegionShardStore(
            root=str(tmp_path), spec=REGION_A, config=CONFIG,
            shard_racks=2, shard_hours=8,
        )
        store.build(jobs=1)
        return store

    def test_truncated_shard_file_is_a_miss(self, tmp_path, oracle):
        store = self.make_store(tmp_path)
        victim = store.load_manifest()["shards"][0]["files"]["runs"]
        with open(os.path.join(store.directory, victim), "wb") as handle:
            handle.write(b"xx")
        fresh = RegionShardStore(
            root=str(tmp_path), spec=REGION_A, config=CONFIG,
            shard_racks=2, shard_hours=8,
        )
        assert fresh.load_manifest() is None
        rebuilt = fresh.open(jobs=1)  # rebuild overwrites the bad file
        assert rebuilt.table1_row() == oracle.table1_row()

    def test_garbage_manifest_is_a_miss(self, tmp_path):
        store = self.make_store(tmp_path)
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.load_manifest() is None

    def test_format_version_bump_is_a_miss(self, tmp_path, monkeypatch):
        store = self.make_store(tmp_path)
        manifest = json.loads(open(store.manifest_path, encoding="utf-8").read())
        assert manifest["format"] == 1
        monkeypatch.setattr("repro.fleet.shards.SHARD_FORMAT_VERSION", 2)
        assert store.load_manifest() is None

    def test_different_seed_does_not_alias(self, tmp_path):
        store = self.make_store(tmp_path)
        other = RegionShardStore(
            root=str(tmp_path),
            spec=REGION_A,
            config=FleetConfig(racks_per_region=6, runs_per_rack=3, seed=78),
            shard_racks=2,
            shard_hours=8,
        )
        assert other.directory != store.directory
        assert other.load_manifest() is None

    def test_region_does_not_alias(self, tmp_path):
        store = self.make_store(tmp_path)
        other = RegionShardStore(
            root=str(tmp_path), spec=REGION_B, config=CONFIG,
            shard_racks=2, shard_hours=8,
        )
        assert other.directory != store.directory
        assert other.load_manifest() is None


class TestOutOfCore:
    def test_streaming_peak_below_materialized(self, tmp_path):
        """The acceptance bound: aggregating shard-by-shard must not
        materialize the region — peak traced memory for the streaming
        aggregations stays well below loading every summary at once."""
        config = FleetConfig(racks_per_region=12, runs_per_rack=6, seed=5)
        dataset = generate_region_shards(
            REGION_A, config, str(tmp_path), shard_racks=3, shard_hours=12, jobs=1
        )
        shard_bytes = [r["bytes"]["summaries"] for r in dataset.manifest["shards"]]
        total_bytes = sum(shard_bytes)
        assert len(shard_bytes) >= 4  # the bound is vacuous with one shard

        def traced(fn):
            # A tracer left running by earlier tests would make start()
            # a no-op and leak their historical peak into ours.
            if tracemalloc.is_tracing():
                tracemalloc.stop()
            tracemalloc.start()
            try:
                fn()
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak

        fresh = ShardedRegionDataset(store=dataset.store, manifest=dataset.manifest)
        streaming_peak = traced(
            lambda: (fresh.table1_row(), fresh.rack_profiles(), fresh.run_contention())
        )
        materialized_peak = traced(
            lambda: pickle.loads(
                pickle.dumps(dataset.summaries, protocol=pickle.HIGHEST_PROTOCOL)
            )
        )
        # Streaming holds one shard's summaries plus scalar partials;
        # materializing holds all of them.  The margins are generous so
        # allocator noise cannot flake the test, but a regression to
        # whole-region loading (4x one shard here) trips both bounds.
        assert streaming_peak < materialized_peak
        assert streaming_peak < total_bytes * 0.75 + 256 * 1024

    def test_iteration_is_lazy(self, sharded):
        """iter_frames yields memmap-backed arrays, not in-heap copies."""
        frame = next(iter(sharded.iter_frames()))
        assert isinstance(frame.runs, np.memmap)
        assert isinstance(frame.bursts, np.memmap)


class TestContextIntegration:
    def test_context_dispatches_to_store(self, tmp_path, oracle):
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(
            fleet=CONFIG, store_dir=str(tmp_path), shard_racks=2, shard_hours=8
        )
        dataset = ctx.dataset("RegA")
        assert isinstance(dataset, ShardedRegionDataset)
        assert ctx.table1_row("RegA") == oracle.table1_row()
        assert ctx.profiles("RegA") == rack_profiles(oracle.summaries)
        assert ctx.hourly_boxes("RegA") == hourly_box_stats(oracle.summaries)

    def test_context_without_store_unchanged(self, oracle):
        from repro.experiments.context import ExperimentContext
        from repro.fleet.dataset import RegionDataset

        ctx = ExperimentContext(fleet=CONFIG)
        assert isinstance(ctx.dataset("RegA"), RegionDataset)
        assert ctx.table1_row("RegA") == oracle.table1_row()
