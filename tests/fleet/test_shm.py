"""Bit-exactness of the shared-memory result transport.

The pickled result path is the oracle: with ``shm_transfer`` enabled
the decoded dataset must fingerprint-identical to both the serial and
pickled-parallel paths, the ``dataset.shm.rack_days`` counter must show
the shm path actually carried the results, and a slot overflow must
fall back to pickling (counted) without changing a single value.
"""

import dataclasses

from repro.config import FleetConfig
from repro.fleet.cache import dataset_cache_key
from repro.fleet.dataset import generate_region_dataset, plan_region
from repro.fleet.parallel import generate_region_dataset_parallel
from repro.fleet.shm import run_plans_shm
from repro.obs.metrics import Metrics
from repro.workload.region import REGION_A

from .test_failfast import FastSynthesizer
from .test_parallel_cache import fingerprint

CONFIG = FleetConfig(racks_per_region=4, runs_per_rack=2, seed=31)
SHM_CONFIG = dataclasses.replace(CONFIG, shm_transfer=True)


def test_shm_transport_is_bit_identical_to_serial_and_pickled():
    serial = generate_region_dataset(REGION_A, CONFIG, synthesizer=FastSynthesizer())
    pickled = generate_region_dataset_parallel(
        REGION_A, CONFIG, jobs=2, synthesizer=FastSynthesizer()
    )
    metrics = Metrics()
    shm = generate_region_dataset_parallel(
        REGION_A, SHM_CONFIG, jobs=2, synthesizer=FastSynthesizer(), metrics=metrics
    )
    assert fingerprint(shm) == fingerprint(serial)
    assert fingerprint(shm) == fingerprint(pickled)
    # Every rack-day crossed through the segment, none fell back.
    assert metrics.counter("dataset.shm.rack_days") == CONFIG.racks_per_region
    assert metrics.counter("dataset.shm.fallback") == 0


def test_slot_overflow_falls_back_to_pickle_without_value_drift():
    plans = plan_region(REGION_A, CONFIG)
    oracle = generate_region_dataset_parallel(
        REGION_A, CONFIG, jobs=2, synthesizer=FastSynthesizer()
    )
    metrics = Metrics()
    per_rack = {}

    def handle_result(plan, summaries, snapshot):
        per_rack[plan.rack_index] = summaries

    # burst_hint=0 shrinks every slot's burst region to a single row, so
    # any rack-day with more than one burst overflows and must ride back
    # over the pickled fallback.
    run_plans_shm(
        plans,
        REGION_A,
        CONFIG,
        handle_result,
        jobs=2,
        synthesizer=FastSynthesizer(),
        metrics=metrics,
        burst_hint=0,
    )
    assert metrics.counter("dataset.shm.fallback") > 0
    flattened = [s for index in sorted(per_rack) for s in per_rack[index]]
    got = dataclasses.replace(oracle, summaries=flattened)
    assert fingerprint(got) == fingerprint(oracle)


def test_shm_transfer_is_execution_only_for_the_cache_key():
    # Flipping the transport must not invalidate cached datasets: the
    # two paths produce identical bytes, so they share a cache entry.
    assert dataset_cache_key(REGION_A, CONFIG) == dataset_cache_key(
        REGION_A, SHM_CONFIG
    )
