"""Calibration regression tests: the synthesis must stay inside the
paper's bands.

These are the guard rails on the fluid model's tuning: any future
change to the service catalog, the demand model, or the buffer
dynamics that drifts a published statistic out of band fails here —
with the full report in the assertion message.
"""

import pytest

from repro.fleet.calibration import PAPER_TARGETS, Target, check, measure
from repro.errors import AnalysisError


class TestTargets:
    def test_target_bands_contain_paper_values(self):
        for target in PAPER_TARGETS:
            assert target.low <= target.paper_value <= target.high, target.name

    def test_target_holds(self):
        target = Target("x", 1.0, 0.5, 2.0)
        assert target.holds(1.0)
        assert not target.holds(0.4)
        assert not target.holds(2.1)


class TestCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return check(racks=16, seed=7)

    def test_all_targets_in_band(self, report):
        assert report.ok, "\n" + report.render()

    def test_loss_inversion_present(self, report):
        """The headline result must survive any retuning."""
        assert report.measured["rega_typical_lossy_pct"] > report.measured[
            "rega_coloc_lossy_pct"
        ], "\n" + report.render()

    def test_report_renders_every_target(self, report):
        text = report.render()
        for target in PAPER_TARGETS:
            assert target.name in text

    def test_too_few_racks_rejected(self):
        with pytest.raises(AnalysisError):
            measure(racks=2)
