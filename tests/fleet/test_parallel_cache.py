"""Determinism of parallel generation and the on-disk dataset cache.

The tentpole guarantee: for a fixed seed, a region-day is byte-identical
whether generated serially, by a process pool of any size, or loaded
back from the cache.  The comparison below is exact float equality
(with NaN treated as equal to NaN, since per-server stats carry NaN for
burst-free servers), which is equivalent to byte identity for the
summary dataclasses.
"""

import dataclasses
import math
import os

import pytest

from repro.config import FleetConfig
from repro.errors import ConfigError
from repro.experiments.context import ExperimentContext
from repro.fleet import cache as cache_module
from repro.fleet.cache import DatasetCache, dataset_cache_key, default_cache_dir
from repro.fleet.dataset import generate_region_dataset
from repro.fleet.parallel import resolve_jobs
from repro.workload.region import REGION_A, REGION_B

CONFIG = FleetConfig(racks_per_region=3, runs_per_rack=2, seed=77)


def comparable(obj):
    """Nested plain-value projection with NaN made comparable."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: comparable(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, float):
        return "nan" if math.isnan(obj) else obj
    if isinstance(obj, (list, tuple)):
        return [comparable(value) for value in obj]
    if isinstance(obj, dict):
        return {key: comparable(value) for key, value in obj.items()}
    return obj


def fingerprint(dataset):
    return [comparable(summary) for summary in dataset.summaries]


@pytest.fixture(scope="module")
def serial_rega():
    return generate_region_dataset(REGION_A, CONFIG, jobs=1)


class TestParallelDeterminism:
    def test_parallel_matches_serial_rega(self, serial_rega):
        parallel = generate_region_dataset(REGION_A, CONFIG, jobs=4)
        assert fingerprint(parallel) == fingerprint(serial_rega)
        assert [comparable(w) for w in parallel.workloads] == [
            comparable(w) for w in serial_rega.workloads
        ]

    def test_parallel_matches_serial_regb(self):
        serial = generate_region_dataset(REGION_B, CONFIG, jobs=1)
        parallel = generate_region_dataset(REGION_B, CONFIG, jobs=3)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_jobs_taken_from_config(self, serial_rega):
        config = dataclasses.replace(CONFIG, jobs=2)
        assert fingerprint(generate_region_dataset(REGION_A, config)) == fingerprint(
            serial_rega
        )

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(0) >= 1
        with pytest.raises(ConfigError):
            resolve_jobs(-1)

    def test_negative_jobs_rejected_by_config(self):
        with pytest.raises(ConfigError):
            FleetConfig(jobs=-2)


class TestDatasetCache:
    def test_cache_hit_matches_generation(self, tmp_path, serial_rega):
        cache = DatasetCache(str(tmp_path))
        cache.store(REGION_A, CONFIG, serial_rega)
        loaded = cache.load(REGION_A, CONFIG)
        assert loaded is not None
        assert fingerprint(loaded) == fingerprint(serial_rega)

    def test_context_roundtrip_skips_generation(self, tmp_path, monkeypatch, serial_rega):
        first = ExperimentContext(fleet=CONFIG, cache_dir=str(tmp_path))
        warm = first.dataset("RegA")

        # A fresh context must satisfy the same request purely from disk.
        from repro.experiments import context as context_module

        def boom(*args, **kwargs):
            raise AssertionError("cache hit should not regenerate")

        monkeypatch.setattr(context_module, "generate_region_dataset", boom)
        second = ExperimentContext(fleet=CONFIG, cache_dir=str(tmp_path))
        assert fingerprint(second.dataset("RegA")) == fingerprint(warm)
        assert fingerprint(warm) == fingerprint(serial_rega)

    def test_corrupted_entry_regenerates_and_overwrites(self, tmp_path, serial_rega):
        cache = DatasetCache(str(tmp_path))
        path = cache.store(REGION_A, CONFIG, serial_rega)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load(REGION_A, CONFIG) is None

        # The context treats it as a miss: regenerates, overwrites, and
        # the entry is readable again.
        ctx = ExperimentContext(fleet=CONFIG, cache_dir=str(tmp_path))
        dataset = ctx.dataset("RegA")
        assert fingerprint(dataset) == fingerprint(serial_rega)
        assert fingerprint(cache.load(REGION_A, CONFIG)) == fingerprint(serial_rega)

    def test_key_invalidates_on_config_change(self):
        base = dataset_cache_key(REGION_A, CONFIG)
        assert dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, seed=78)) != base
        assert (
            dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, racks_per_region=4))
            != base
        )
        assert (
            dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, runs_per_rack=3))
            != base
        )
        assert dataset_cache_key(REGION_B, CONFIG) != base

    def test_key_invalidates_on_format_version_change(self, monkeypatch):
        base = dataset_cache_key(REGION_A, CONFIG)
        monkeypatch.setattr(cache_module, "DATASET_FORMAT_VERSION", 999)
        assert dataset_cache_key(REGION_A, CONFIG) != base

    def test_stale_format_version_is_a_miss(self, tmp_path, monkeypatch, serial_rega):
        cache = DatasetCache(str(tmp_path))
        path = cache.store(REGION_A, CONFIG, serial_rega)
        # Keep the key (file name) fixed but mark the payload stale, as
        # an old writer would have: the loader must reject it.
        import pickle

        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = 0
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert cache.load(REGION_A, CONFIG) is None

    def test_jobs_excluded_from_key(self):
        assert dataset_cache_key(
            REGION_A, dataclasses.replace(CONFIG, jobs=1)
        ) == dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, jobs=8))

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("MILLISAMPLER_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
        monkeypatch.delenv("MILLISAMPLER_CACHE_DIR")
        assert default_cache_dir().endswith("millisampler-repro")


class TestDegenerateScales:
    """Zero racks and zero runs are valid (empty) region-days.

    Regression: the parallel path crashed with ``max_workers=0`` when a
    region planned zero racks, and the serial path dropped zero-run
    racks from ``workloads`` while the parallel path kept them.
    """

    def test_zero_racks_parallel_matches_serial(self):
        config = FleetConfig(racks_per_region=0, runs_per_rack=2, seed=77)
        serial = generate_region_dataset(REGION_A, config, jobs=1)
        parallel = generate_region_dataset(REGION_A, config, jobs=4)
        assert serial.summaries == [] and parallel.summaries == []
        assert serial.workloads == [] and parallel.workloads == []
        assert serial.region == parallel.region == "RegA"

    def test_zero_runs_per_rack_workloads_parity(self):
        config = FleetConfig(racks_per_region=3, runs_per_rack=0, seed=77)
        serial = generate_region_dataset(REGION_A, config, jobs=1)
        parallel = generate_region_dataset(REGION_A, config, jobs=2)
        assert serial.summaries == [] and parallel.summaries == []
        # Every *planned* rack contributes its workload on both paths.
        assert len(serial.workloads) == 3
        assert [comparable(w) for w in serial.workloads] == [
            comparable(w) for w in parallel.workloads
        ]

    def test_negative_scales_still_rejected(self):
        with pytest.raises(ConfigError):
            FleetConfig(racks_per_region=-1)
        with pytest.raises(ConfigError):
            FleetConfig(runs_per_rack=-1)


class TestCacheHardening:
    def test_stale_tmp_files_swept_on_store(self, tmp_path, serial_rega):
        from repro.fleet.cache import STALE_TMP_AGE_S, sweep_stale_tmp_files

        stale = tmp_path / "dead-writer.tmp"
        stale.write_bytes(b"orphan")
        old = 2 * STALE_TMP_AGE_S
        os.utime(stale, (os.path.getmtime(stale) - old, os.path.getmtime(stale) - old))
        fresh = tmp_path / "live-writer.tmp"
        fresh.write_bytes(b"in flight")

        cache = DatasetCache(str(tmp_path))
        cache.store(REGION_A, CONFIG, serial_rega)
        assert not stale.exists()  # orphan removed
        assert fresh.exists()  # live writer untouched
        assert cache.metrics.counter("dataset.cache.swept_tmp") == 1

    def test_sweep_missing_directory_is_noop(self, tmp_path):
        from repro.fleet.cache import sweep_stale_tmp_files

        assert sweep_stale_tmp_files(str(tmp_path / "nope")) == 0

    def test_canonical_mixed_key_dict(self):
        from repro.fleet.cache import _canonical

        # Mixed-type dict keys are unorderable; sorting by str(key) must
        # not raise and must be deterministic.
        value = {1: "a", "b": 2, (2, 3): 4}
        assert _canonical(value) == _canonical(dict(reversed(list(value.items()))))

    def test_canonical_non_finite_floats(self):
        import json as json_module

        from repro.fleet.cache import _canonical

        projected = _canonical({"x": float("nan"), "y": float("inf")})
        assert projected == {"x": "__float__:nan", "y": "__float__:inf"}
        # The projection must serialize under allow_nan=False.
        json_module.dumps(projected, allow_nan=False)

    def test_fleet_config_fields_exhaustively_classified(self):
        """Every FleetConfig field must be explicitly key-bearing or
        execution-only, so a future dataset-shaping field cannot be
        silently left out of the cache key and alias datasets."""
        from repro.fleet.cache import EXECUTION_ONLY_FIELDS, KEY_BEARING_FIELDS

        declared = set(KEY_BEARING_FIELDS) | set(EXECUTION_ONLY_FIELDS)
        actual = {f.name for f in dataclasses.fields(FleetConfig)}
        assert declared == actual, (
            f"unclassified FleetConfig fields: {sorted(actual - declared)}; "
            f"stale classifications: {sorted(declared - actual)}"
        )
        assert not set(KEY_BEARING_FIELDS) & set(EXECUTION_ONLY_FIELDS)

    def test_execution_only_fields_do_not_change_key(self):
        from repro.fleet.cache import EXECUTION_ONLY_FIELDS

        base = dataset_cache_key(REGION_A, CONFIG)
        for name in EXECUTION_ONLY_FIELDS:
            if name == "kernel":
                # Not numeric: flip to an explicit non-default choice.
                bumped_value = "numpy"
            else:
                bumped_value = getattr(CONFIG, name) + 3
            bumped = dataclasses.replace(CONFIG, **{name: bumped_value})
            assert dataset_cache_key(REGION_A, bumped) == base, name

    def test_key_bearing_fields_each_change_key(self):
        from repro.config import PolicySpec
        from repro.fleet.cache import KEY_BEARING_FIELDS

        base = dataset_cache_key(REGION_A, CONFIG)
        for name in KEY_BEARING_FIELDS:
            if name == "policy":
                # Not numeric: perturb by choosing a different policy.
                bumped_value = PolicySpec(name="complete-sharing")
            else:
                # hours cannot grow past a day; shrink it instead.
                delta = -12 if name == "hours" else 1
                bumped_value = getattr(CONFIG, name) + delta
            bumped = dataclasses.replace(CONFIG, **{name: bumped_value})
            assert dataset_cache_key(REGION_A, bumped) != base, name


class TestPolicyCacheIdentity:
    """The sharing policy is part of dataset identity — except at the
    default, where it must be *omitted* so every pre-policy-axis cache
    key (and dataset) stays bit-identical.  The hex literals below were
    captured on the commit before the policy refactor; they are the
    proof the default path is a no-op."""

    PRE_REFACTOR_KEY_SMALL = (
        "0edcda6ae5e52586d63a183219998ecb7a37f8564c21e14e2082f6b831877204"
    )
    PRE_REFACTOR_KEY_DEFAULT = (
        "b45e67c3f6b6ec7a3959c1712b5a9ba9f2245e09a5e8d20966c8b07396a3952f"
    )

    def test_default_keys_bit_identical_to_pre_refactor(self):
        assert dataset_cache_key(REGION_A, CONFIG) == self.PRE_REFACTOR_KEY_SMALL
        assert (
            dataset_cache_key(REGION_A, FleetConfig()) == self.PRE_REFACTOR_KEY_DEFAULT
        )

    def test_explicit_default_spec_is_the_same_key(self):
        from repro.config import PolicySpec

        explicit = dataclasses.replace(CONFIG, policy=PolicySpec())
        assert dataset_cache_key(REGION_A, explicit) == self.PRE_REFACTOR_KEY_SMALL

    def test_each_registered_policy_gets_its_own_key(self):
        from repro.fleet.policies import registered_policy_specs

        keys = {
            dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, policy=spec))
            for spec in registered_policy_specs()
        }
        assert len(keys) == len(registered_policy_specs())

    def test_policy_params_are_key_bearing(self):
        from repro.config import PolicySpec

        tuned = PolicySpec(name="delay-driven", params=(("target_delay_steps", 3.0),))
        default = PolicySpec(name="delay-driven")
        assert dataset_cache_key(
            REGION_A, dataclasses.replace(CONFIG, policy=tuned)
        ) != dataset_cache_key(REGION_A, dataclasses.replace(CONFIG, policy=default))


class TestDefaultPolicyDatasetNoOp:
    """End-to-end default no-op: the generated dataset itself (not just
    the key) is bit-identical to the pre-refactor pipeline, pinned by a
    content digest and the Table-1 row captured before the refactor."""

    PRE_REFACTOR_FINGERPRINT = (
        "07d350bd7207905740b5192c5dcbd8e929cbec82fe018e2e29f6cac450b45946"
    )

    @staticmethod
    def _feed(h, value, tag=""):
        import numpy as np

        feed = TestDefaultPolicyDatasetNoOp._feed
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for f in dataclasses.fields(value):
                feed(h, getattr(value, f.name), tag + "." + f.name)
        elif isinstance(value, np.ndarray):
            h.update(tag.encode())
            h.update(str(value.dtype).encode())
            h.update(value.tobytes())
        elif isinstance(value, (list, tuple)):
            for i, v in enumerate(value):
                feed(h, v, f"{tag}[{i}]")
        elif isinstance(value, dict):
            for k in sorted(value, key=str):
                feed(h, value[k], f"{tag}.{k}")
        elif isinstance(value, (int, float, np.floating, np.integer)):
            h.update(tag.encode())
            h.update(repr(value).encode())
        elif isinstance(value, str):
            h.update(tag.encode())
            h.update(value.encode())
        elif value is None:
            h.update(tag.encode())
            h.update(b"None")
        else:
            raise TypeError(f"{tag}: {type(value)}")

    def test_dataset_content_digest_pinned(self, serial_rega):
        import hashlib

        h = hashlib.sha256()
        for summary in serial_rega.summaries:
            self._feed(h, summary, "summary")
        assert h.hexdigest() == self.PRE_REFACTOR_FINGERPRINT

    def test_table1_row_pinned(self, serial_rega):
        row = serial_rega.table1_row()
        assert (
            row.runs,
            row.server_runs,
            row.bursty_server_runs,
            row.bursts,
            row.racks,
        ) == (6, 552, 266, 11034, 3)
