"""Property suite: random admit/release sequences against the auditor.

Hypothesis drives arbitrary interleavings of admissions, releases, and
counter resets on an audited :class:`SharedBuffer`; the
:class:`InvariantAuditor` checks every conservation law on every event,
so any counter-accounting regression in the buffer surfaces as an
:class:`InvariantViolation` here rather than as a silently skewed
figure.  Select the deterministic CI profile with HYPOTHESIS_PROFILE=ci
(registered in tests/conftest.py).
"""

from hypothesis import given, settings, strategies as st

from repro.config import BufferConfig
from repro.simnet.audit import audited
from repro.simnet.buffer import SharedBuffer

QUEUES = ["q0", "q1", "q2", "q3"]

#: (op, queue_index, size): op 0-2 = admit (weighted toward admits),
#: op 3 = release the oldest held admission on that queue, op 4 = reset
#: the cumulative counters.
OPERATIONS = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, len(QUEUES) - 1), st.integers(1, 600)),
    max_size=300,
)

CONFIGS = st.sampled_from(
    [
        # (shared, dedicated, alpha): a tight pool, a dedicated-heavy
        # pool, and a paper-like quadrant shape.
        (1000, 0.0, 1.0),
        (1000, 200.0, 2.0),
        (4000, 50.0, 0.5),
    ]
)


@given(operations=OPERATIONS, config=CONFIGS)
@settings(max_examples=60)
def test_random_admit_release_sequences_conserve_bytes(operations, config):
    shared, dedicated, alpha = config
    with audited() as auditor:
        buffer = SharedBuffer(
            BufferConfig(
                shared_bytes=shared,
                dedicated_bytes_per_queue=dedicated,
                alpha=alpha,
                ecn_threshold_bytes=100,
            )
        )
        held: dict[str, list] = {name: [] for name in QUEUES}
        for name in QUEUES:
            buffer.register_queue(name)
        for op, queue_index, size in operations:
            name = QUEUES[queue_index]
            if op <= 2:
                admission = buffer.admit(name, size)
                if admission.accepted:
                    held[name].append(admission)
            elif op == 3 and held[name]:
                buffer.release(name, held[name].pop(0))
            elif op == 4:
                buffer.reset_counters()
        # Drain everything: the pool must return to exactly empty.
        for name, admissions in held.items():
            for admission in admissions:
                buffer.release(name, admission)
        assert buffer.shared_occupancy == 0
        for name in QUEUES:
            assert buffer.queue_occupancy(name) == 0
    assert auditor.violations == []
    admit_count = sum(1 for op, _q, _s in operations if op <= 2)
    assert auditor.events >= admit_count


@given(
    sizes=st.lists(st.integers(1, 500), min_size=1, max_size=100),
    dedicated=st.integers(0, 300),
)
@settings(max_examples=40)
def test_admission_split_always_sums_to_size(sizes, dedicated):
    """Every accepted admission's dedicated + shared charges equal the
    packet size, and dedicated usage never exceeds the per-queue cap
    (checked per-event by the auditor; re-asserted here end-to-end)."""
    with audited() as auditor:
        buffer = SharedBuffer(
            BufferConfig(
                shared_bytes=2000,
                dedicated_bytes_per_queue=float(dedicated),
                alpha=1.0,
                ecn_threshold_bytes=100,
            )
        )
        buffer.register_queue("q0")
        admitted_bytes = 0
        for size in sizes:
            admission = buffer.admit("q0", size)
            if admission.accepted:
                assert admission.dedicated_bytes + admission.shared_bytes == size
                admitted_bytes += size
        assert buffer.total_admitted_bytes() == admitted_bytes
        assert buffer.queue_occupancy("q0") == admitted_bytes
    assert auditor.violations == []
