"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro import units
from repro.core.run import MillisamplerRun, RunMetadata, SyncRun
from repro.experiments.context import ExperimentContext


# Hypothesis profiles: "dev" (default) explores freely; "ci" is fully
# deterministic (derandomize replays the same minimal example set every
# run) and bounded so the property suite stays fast in CI.  Select with
# HYPOTHESIS_PROFILE=ci.
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.register_profile(
    "ci", max_examples=25, deadline=None, derandomize=True, print_blob=True
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def make_run(
    in_bytes,
    host: str = "h0",
    start_time: float = 0.0,
    sampling_interval: float = units.ANALYSIS_INTERVAL,
    line_rate: float = units.SERVER_LINK_RATE,
    retx=None,
    ecn=None,
    conns=None,
    task: str = "web/1",
) -> MillisamplerRun:
    """Build a run from an ingress byte series with optional extras."""
    series = np.asarray(in_bytes, dtype=np.float64)
    buckets = len(series)
    zeros = np.zeros(buckets)
    return MillisamplerRun(
        meta=RunMetadata(
            host=host,
            rack="rack0",
            region="RegA",
            task=task,
            start_time=start_time,
            sampling_interval=sampling_interval,
            line_rate=line_rate,
        ),
        in_bytes=series,
        out_bytes=zeros.copy(),
        in_retx_bytes=np.asarray(retx, dtype=np.float64) if retx is not None else zeros.copy(),
        out_retx_bytes=zeros.copy(),
        in_ecn_bytes=np.asarray(ecn, dtype=np.float64) if ecn is not None else zeros.copy(),
        conn_estimate=np.asarray(conns, dtype=np.float64) if conns is not None else zeros.copy(),
    )


def make_sync_run(rows, **kwargs) -> SyncRun:
    """Build a SyncRun from a list of per-server ingress series."""
    runs = [make_run(row, host=f"h{i}") for i, row in enumerate(rows)]
    defaults = dict(rack="rack0", region="RegA", runs=runs)
    defaults.update(kwargs)
    return SyncRun(**defaults)


#: Bytes that fill one 1 ms bucket at exactly line rate.
FULL_BUCKET = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL
#: A clearly bursty bucket (80% utilization).
BURSTY = 0.8 * FULL_BUCKET
#: A clearly quiet bucket (10% utilization).
QUIET = 0.1 * FULL_BUCKET


@pytest.fixture(scope="session")
def small_ctx() -> ExperimentContext:
    """One small shared dataset for experiment tests (generated once).

    28 racks x 6 runs per region is the smallest scale at which the
    paper's distributional claims (bimodality, inversion, diurnal
    trends) are statistically stable across seeds.
    """
    return ExperimentContext.small(racks=28, runs_per_rack=6, seed=5)
