"""Fault-injection tests for the diagnostic scenarios Section 4 reports.

The paper: Millisampler's week of host-local history "permits
diagnostic analysis of atypical events, including firmware bugs,
kernel locking errors, and large congestion events.  For instance,
Millisampler helped uncover a NIC firmware bug by isolating examples
of packet loss although utilization was low at fine time-scales."
And Section 4.6: "we have observed locking bugs in the kernel that
prevent any handling of network interrupts; in these cases
Millisampler will see no data even though the network interface card
is receiving, which can lead to additional apparent bursts."
"""


from repro.analysis.bursts import detect_bursts
from repro.core.millisampler import Direction, Millisampler, PacketObservation
from repro.core.run import RunMetadata
from repro import units


def feed_steady_traffic(sampler, rate_fraction, start, duration, blackout=None,
                        segment=16 * 1024):
    """Feed a steady stream at ``rate_fraction`` of line rate; during
    ``blackout`` (a (start, end) window) the kernel processes nothing and
    the pent-up bytes are delivered in a batch when it recovers — the
    soft-irq stall signature."""
    line_rate = units.SERVER_LINK_RATE
    interval = segment / (line_rate * rate_fraction)
    time = start
    pending = 0
    while time < start + duration:
        in_blackout = blackout is not None and blackout[0] <= time < blackout[1]
        if in_blackout:
            pending += segment
        else:
            if pending:
                # Recovery: the backlog is handed to the stack at once.
                sampler.observe(
                    PacketObservation(
                        time=time, direction=Direction.INGRESS,
                        size=pending, flow_key="stall",
                    )
                )
                pending = 0
            sampler.observe(
                PacketObservation(
                    time=time, direction=Direction.INGRESS,
                    size=segment, flow_key="steady",
                )
            )
        time += interval


def make_sampler(buckets=200):
    sampler = Millisampler(
        RunMetadata(host="diag"), sampling_interval=1e-3, buckets=buckets, cpus=2
    )
    sampler.attach()
    sampler.enable()
    return sampler


class TestKernelStallArtifact:
    def test_blackout_shows_gap_then_apparent_burst(self):
        """A soft-irq stall makes smooth 30% traffic look like: silence,
        then a burst — the Section 4.6 artifact, reproduced."""
        sampler = make_sampler()
        feed_steady_traffic(
            sampler, rate_fraction=0.3, start=0.0, duration=0.15,
            blackout=(0.05, 0.08),
        )
        sampler.finish(now=0.3)
        run = sampler.read_run()

        utilization = run.ingress_utilization()
        stalled = utilization[51:79]
        assert stalled.max() == 0.0  # the gap: NIC receiving, kernel silent
        bursts = detect_bursts(run)
        recovery_bursts = [b for b in bursts if 78 <= b.start <= 82]
        assert recovery_bursts  # the pent-up batch looks like a burst

    def test_healthy_stream_has_no_bursts(self):
        sampler = make_sampler()
        feed_steady_traffic(sampler, rate_fraction=0.3, start=0.0, duration=0.15)
        sampler.finish(now=0.3)
        run = sampler.read_run()
        assert detect_bursts(run) == []


class TestFirmwareBugSignature:
    def test_loss_at_low_utilization_is_isolatable(self):
        """The NIC-firmware-bug signature: retransmissions while
        fine-timescale utilization stays low — distinguishable from
        congestion loss precisely because Millisampler shows the link
        was NOT bursty when the loss happened."""
        sampler = make_sampler()
        line = units.SERVER_LINK_RATE
        # Smooth 10% traffic with periodic retransmissions (the NIC is
        # corrupting packets, not overflowing a queue).
        for bucket in range(150):
            time = bucket * 1e-3
            sampler.observe(
                PacketObservation(
                    time=time, direction=Direction.INGRESS,
                    size=int(0.1 * line * 1e-3), flow_key="app",
                )
            )
            if bucket % 10 == 5:
                sampler.observe(
                    PacketObservation(
                        time=time + 1e-4, direction=Direction.INGRESS,
                        size=3000, flow_key="app", retransmit=True,
                    )
                )
        sampler.finish(now=0.3)
        run = sampler.read_run()

        # Retransmissions present...
        assert run.in_retx_bytes.sum() > 0
        # ...but no bucket with a retransmission was anywhere near bursty.
        retx_buckets = run.in_retx_bytes > 0
        assert run.ingress_utilization()[retx_buckets].max() < 0.2
        # Congestion-loss bursts would be flagged; here none exist.
        assert detect_bursts(run) == []
