"""Integration tests: full packet-level pipeline, sampler to analysis.

These exercise the complete Section 4 stack: traffic flows through the
simulated rack, Millisampler taps observe it on each host, the
SyncMillisampler control plane collects and aligns runs, and the
analysis pipeline produces the paper's metrics.
"""

import numpy as np
import pytest

from repro import units
from repro.analysis.bursts import detect_run_bursts
from repro.analysis.summary import summarize_run
from repro.config import BufferConfig, RackConfig, SamplerConfig
from repro.core.syncsampler import SyncMillisampler
from repro.simnet.topology import build_rack
from repro.simnet.tcp import DctcpControl, open_connection
from repro.workload.flows import BurstServer, IncastApp


def add_background_trickle(rack, period=5e-3, size=2000):
    """Start the library's background trickle (production hosts always
    carry some traffic, so samplers begin promptly when enabled)."""
    from repro.workload.flows import BackgroundTrickle

    BackgroundTrickle(rack.hosts, period=period, size=size).start()


def drive(rack, sync, sampler_config, start_at, extra_time=0.2, poll_interval=5e-3):
    """Run the engine with periodic user-space sampler polling.

    Poll times are computed as exact multiples of the interval so a
    poll lands exactly on the scheduled sync start (accumulating the
    interval drifts below it in floating point).
    """
    end = start_at + sampler_config.duration + extra_time
    tick = 0
    while rack.engine.now < end:
        rack.engine.run_until(min(tick * poll_interval, end))
        rack.poll_samplers()
        tick += 1
    rack.poll_samplers()


@pytest.fixture
def sampler_config():
    return SamplerConfig(buckets=400, cpus=4)


class TestSamplerObservesRealTraffic:
    def test_tcp_transfer_fully_accounted(self, sampler_config):
        rack = build_rack(servers=4, sampler_config=sampler_config,
                          rng=np.random.default_rng(2))
        add_background_trickle(rack)
        sync = SyncMillisampler()
        start_at = 3 * sampler_config.duration
        sync_id = sync.request_collection(
            rack.sampled_hosts, rack.name, "RegA", start_at, now=0.0
        )

        transfer_bytes = 2_000_000
        sender, receiver = open_connection(
            rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448)
        )
        # Start mid-window: data landing in a run's very first bucket can
        # be partially trimmed during cross-host alignment.
        rack.engine.at(start_at + 0.05, lambda: sender.send(transfer_bytes))
        drive(rack, sync, sampler_config, start_at)

        sync_run = sync.assemble(sync_id)
        receiver_index = [r.meta.host for r in sync_run.runs].index(rack.hosts[1].name)
        observed = sync_run.runs[receiver_index].in_bytes.sum()
        # The receiver's sampler saw the whole transfer plus headers and
        # the light background trickle.
        assert observed >= transfer_bytes
        assert observed <= transfer_bytes * 1.15

    def test_burst_visible_at_correct_time(self, sampler_config):
        rack = build_rack(servers=4, sampler_config=sampler_config,
                          rng=np.random.default_rng(3))
        sync = SyncMillisampler()
        start_at = 3 * sampler_config.duration
        sync_id = sync.request_collection(
            rack.sampled_hosts, rack.name, "RegA", start_at, now=0.0
        )
        add_background_trickle(rack)
        server = BurstServer(rack.hosts[0])
        burst_at = start_at + 0.05
        rack.engine.at(
            burst_at,
            lambda: server.transmit_burst(rack.hosts[1].name, int(2 * units.MB)),
        )
        drive(rack, sync, sampler_config, start_at)

        sync_run = sync.assemble(sync_id)
        receiver_index = [r.meta.host for r in sync_run.runs].index(rack.hosts[1].name)
        bursts = detect_run_bursts(sync_run)
        receiver_bursts = [b for b in bursts if b.server == receiver_index]
        assert receiver_bursts
        burst = max(receiver_bursts, key=lambda b: b.volume)
        # The 2 MB burst lasts ~1.3 ms; at 1 ms sampling its detected
        # volume depends on bucket phase, but the bytes around the burst
        # window must account for the whole transfer.
        receiver_run = sync_run.runs[receiver_index]
        window_lo = max(burst.start - 1, 0)
        window_hi = min(burst.end + 1, receiver_run.buckets)
        window_bytes = receiver_run.in_bytes[window_lo:window_hi].sum()
        assert window_bytes >= 1.9 * units.MB
        assert burst.volume >= 0.9 * units.MB


class TestIncastLossPipeline:
    def test_incast_produces_retransmit_labels_in_sampler_data(self):
        """Heavy incast into a tiny buffer loses packets; the retransmit
        label bit must surface in the receiver's Millisampler run, and
        the burst must be classified lossy (Section 8 methodology)."""
        sampler_config = SamplerConfig(buckets=400, cpus=4)
        # A ~1 MB shared buffer: big enough that the synchronized slam
        # delivers at line rate for a millisecond (a detectable burst),
        # small enough that it overflows (loss).
        rack_config = RackConfig(
            servers=10,
            buffer=BufferConfig(
                shared_bytes=1_000_000,
                dedicated_bytes_per_queue=0,
                alpha=1.0,
                ecn_threshold_bytes=1e12,  # no ECN: force loss
            ),
        )
        rack = build_rack(
            servers=10, rack_config=rack_config, sampler_config=sampler_config,
            rng=np.random.default_rng(4),
        )
        add_background_trickle(rack)
        sync = SyncMillisampler()
        start_at = 3 * sampler_config.duration
        sync_id = sync.request_collection(
            rack.sampled_hosts, rack.name, "RegA", start_at, now=0.0
        )
        app = IncastApp(
            senders=rack.hosts[1:9],
            receiver=rack.hosts[0],
            bytes_per_sender=300_000,
            segment_bytes=8 * 1024,
            # A large initial window makes the synchronized slam exceed
            # 50% of line rate in its first millisecond (heavy incast).
            initial_cwnd_segments=130,
        )
        app.start(at_time=start_at + 0.02)
        drive(rack, sync, sampler_config, start_at, extra_time=0.6)

        assert rack.switch.counters.discard_packets > 0
        sync_run = sync.assemble(sync_id)
        receiver_run = next(
            r for r in sync_run.runs if r.meta.host == rack.hosts[0].name
        )
        assert receiver_run.in_retx_bytes.sum() > 0

        # Incast collapse repairs losses via RTO (>= 5 ms in this stack),
        # so widen the retransmission-observation lag accordingly.
        summary = summarize_run(sync_run, loss_lag_buckets=30)
        lossy_bursts = [b for b in summary.bursts if b.lossy]
        assert lossy_bursts


class TestFluidVsPacketConsistency:
    def test_same_metrics_schema(self, small_ctx):
        """Fluid-model summaries and packet-level summaries are the same
        type, so every analysis runs on both substrates."""
        fluid_summary = small_ctx.summaries("RegA")[0]
        assert fluid_summary.contention.mean >= 0
        assert fluid_summary.servers == 92
