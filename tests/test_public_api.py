"""Public-API hygiene: documentation and import surface.

Every public module, class, and function in the library must carry a
docstring (deliverable (e): "doc comments on every public item"), and
each package's ``__all__`` must resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.simnet",
    "repro.simnet.tcp",
    "repro.workload",
    "repro.fleet",
    "repro.analysis",
    "repro.experiments",
    "repro.viz",
    "repro.io",
]


def _walk_modules():
    names = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.add(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"{module_name}: {undocumented}"


class TestImportSurface:
    @pytest.mark.parametrize(
        "package_name",
        [p for p in PACKAGES],
    )
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name}"

    def test_version_exposed(self):
        assert repro.__version__
