"""Benchmark — Figure 13: hourly contention box statistics.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig13_diurnal as experiment


def test_bench_fig13(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert "rega_high_peak_increase" in result.metrics
