"""Benchmark — Figure 4: burst-generator validation (5 concurrent bursty servers).

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig04_burst_validation as experiment


def test_bench_fig04(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("max_concurrent_bursty") == 5
