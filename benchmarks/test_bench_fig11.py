"""Benchmark — Figure 11: dominant-task density sorted by rack contention.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig11_dominant_task as experiment


def test_bench_fig11(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("high_median_share_pct") >= 50
