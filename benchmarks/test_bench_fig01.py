"""Benchmark — Figure 1: dynamic-threshold queue-share curve plus packet-level cross-validation.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig01_queue_share as experiment


def test_bench_fig01(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("share_alpha1_s1") == 0.5
