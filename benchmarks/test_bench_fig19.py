"""Benchmark — Figure 19: loss rate vs burst connection count.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig19_incast_loss as experiment


def test_bench_fig19(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("median_contended_to_nc_ratio") >= 0
