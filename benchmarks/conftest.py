"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure.  The synthetic
datasets are generated once per session and cached in the experiment
context, so individual benchmarks measure the experiment's analysis
cost; dedicated benchmarks cover dataset generation and the fluid
model themselves.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="session")
def bench_ctx() -> ExperimentContext:
    """Benchmark-scale context: small but statistically meaningful."""
    ctx = ExperimentContext.small(racks=20, runs_per_rack=4, seed=11)
    # Pre-generate both region datasets so experiment benchmarks measure
    # analysis, not generation.
    ctx.dataset("RegA")
    ctx.dataset("RegB")
    return ctx
