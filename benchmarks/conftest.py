"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure.  The synthetic
datasets are generated once per session, held in the experiment
context, and persisted in the on-disk dataset cache — so the first
benchmark session pays generation and every later session starts from
a warm cache.  Individual benchmarks therefore measure the
experiment's analysis cost; dedicated benchmarks cover dataset
generation and the fluid model themselves.

Run everything with::

    pytest benchmarks/ --benchmark-only

Set ``MILLISAMPLER_CACHE_DIR`` to redirect the cache, or delete the
cache directory to re-measure cold generation.
"""

import pytest

from repro.experiments.context import ExperimentContext
from repro.fleet.cache import default_cache_dir


@pytest.fixture(scope="session")
def bench_ctx() -> ExperimentContext:
    """Benchmark-scale context: small but statistically meaningful."""
    ctx = ExperimentContext.small(racks=20, runs_per_rack=4, seed=11)
    ctx.cache_dir = default_cache_dir()
    # Pre-generate (or cache-load) both region datasets so experiment
    # benchmarks measure analysis, not generation.
    ctx.dataset("RegA")
    ctx.dataset("RegB")
    return ctx
