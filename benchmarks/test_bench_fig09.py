"""Benchmark — Figure 9: busy-hour contention CDF across racks (both regions).

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig09_contention_cdf as experiment


def test_bench_fig09(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("bimodal_gap_ratio") > 1.5
