"""Benchmark — Figure 3: full packet-level multicast validation (simulation + alignment).

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig03_multicast_validation as experiment


def test_bench_fig03(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("burst_alignment_fraction") >= 0.9
