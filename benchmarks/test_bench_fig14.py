"""Benchmark — Figure 14: contention vs per-minute ingress volume.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig14_volume_correlation as experiment


def test_bench_fig14(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("pearson_r") > 0
