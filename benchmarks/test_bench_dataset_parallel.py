"""Benchmarks — serial vs parallel region-day generation, and cache hits.

The acceptance bar for the parallel path: >1.5x over serial at
racks=20, runs_per_rack=4 on a machine with >= 4 cores.  Rack days are
independent units of fluid-model work, so the fan-out scales close to
linearly until the pool outnumbers the racks.

On a single-core machine the parallel benchmark is skipped (there is
nothing to win, only process overhead to pay).
"""

import os

import pytest

from repro.config import FleetConfig
from repro.fleet.cache import DatasetCache
from repro.fleet.dataset import generate_region_dataset
from repro.workload.region import REGION_A

#: Matches the bench_ctx scale so the acceptance comparison is direct.
CONFIG = FleetConfig(racks_per_region=20, runs_per_rack=4, seed=11)
EXPECTED_RUNS = CONFIG.racks_per_region * CONFIG.runs_per_rack

CORES = os.cpu_count() or 1


def test_bench_generate_region_serial(benchmark):
    """Baseline: one process synthesizes every rack day."""
    dataset = benchmark.pedantic(
        lambda: generate_region_dataset(REGION_A, CONFIG, jobs=1),
        rounds=1,
        iterations=1,
    )
    assert len(dataset.summaries) == EXPECTED_RUNS


@pytest.mark.skipif(CORES < 2, reason="parallel generation needs multiple cores")
def test_bench_generate_region_parallel(benchmark):
    """Process-pool fan-out (compare against the serial baseline; the
    ratio should exceed 1.5x on >= 4 cores)."""
    jobs = min(4, CORES)
    dataset = benchmark.pedantic(
        lambda: generate_region_dataset(REGION_A, CONFIG, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    assert len(dataset.summaries) == EXPECTED_RUNS


def test_bench_cache_hit(benchmark, tmp_path):
    """A warm cache load must be orders of magnitude under generation."""
    cache = DatasetCache(str(tmp_path))
    small = FleetConfig(racks_per_region=4, runs_per_rack=2, seed=11)
    cache.store(REGION_A, small, generate_region_dataset(REGION_A, small))

    dataset = benchmark(lambda: cache.load(REGION_A, small))
    assert dataset is not None
    assert len(dataset.summaries) == 8
