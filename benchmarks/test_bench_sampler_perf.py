"""Benchmarks — Millisampler itself (Section 4.3).

Measures the reproduction's sampler on the metrics the paper reports
for the real one: per-packet observation cost, the fixed counter
read-out, and the cost-model figures.  Absolute nanoseconds differ
(Python vs eBPF), but the *structure* — tiny per-packet cost, fixed
read-out, disabled fast path far cheaper than enabled — must hold.
"""

import numpy as np

from repro.core.millisampler import Direction, Millisampler, PacketObservation
from repro.core.run import RunMetadata
from repro.experiments import perf_sampler


def _fresh_sampler(count_flows=True) -> Millisampler:
    sampler = Millisampler(
        RunMetadata(host="bench"),
        sampling_interval=1e-3,
        buckets=2000,
        cpus=4,
        count_flows=count_flows,
    )
    sampler.attach()
    sampler.enable()
    return sampler


def test_bench_observe_packet(benchmark):
    """Per-packet cost on the enabled path."""
    sampler = _fresh_sampler()
    observation = PacketObservation(
        time=0.5, direction=Direction.INGRESS, size=1500, flow_key=("f", 1), cpu=1
    )

    benchmark(sampler.observe, observation)
    assert sampler.stats.packets_processed > 0


def test_bench_observe_disabled(benchmark):
    """The disabled fast path (the paper's 7 ns case)."""
    sampler = _fresh_sampler()
    sampler.finish(now=10.0)  # run complete -> disabled
    observation = PacketObservation(
        time=11.0, direction=Direction.INGRESS, size=1500, flow_key=("f", 1)
    )

    benchmark(sampler.observe, observation)
    assert sampler.stats.packets_skipped_disabled > 0


def test_bench_read_run(benchmark):
    """Counter read-out (the paper's fixed 4.3 ms map read)."""

    def setup():
        sampler = _fresh_sampler()
        rng = np.random.default_rng(0)
        for time in np.sort(rng.uniform(0, 1.9, size=2000)):
            sampler.observe(
                PacketObservation(
                    time=float(time),
                    direction=Direction.INGRESS,
                    size=1500,
                    flow_key=int(rng.integers(0, 50)),
                    cpu=int(rng.integers(0, 4)),
                )
            )
        sampler.finish(now=10.0)
        return (sampler,), {}

    def read(sampler):
        return sampler.read_run()

    run = benchmark.pedantic(read, setup=setup, rounds=10)


def test_bench_cost_model(benchmark):
    """Evaluating the Section 4.3 cost model and break-even point."""
    result = benchmark(perf_sampler.run, None)
    assert 30_000 <= result.metric("breakeven_packets") <= 36_000
