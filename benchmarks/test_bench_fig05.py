"""Benchmark — Figure 5: synthesizing the example low/high contention runs.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig05_example_runs as experiment


def test_bench_fig05(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("high_contention_mean") > result.metric("low_contention_mean")
