"""Benchmark — Figure 12: per-rack day-long contention bands.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig12_rack_variation as experiment


def test_bench_fig12(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("RegA_high_band_width") >= result.metric("RegA_low_band_width")
