"""Benchmark — Table 1: dataset summary accounting for both regions.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import table1_dataset as experiment


def test_bench_table1(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("RegA_runs") > 0
