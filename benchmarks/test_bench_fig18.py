"""Benchmark — Figure 18: loss rate vs burst length (contended vs non-contended).

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig18_length_loss as experiment


def test_bench_fig18(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("peak_contended_loss_pct") >= 0
