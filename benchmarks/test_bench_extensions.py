"""Benchmarks — extension experiments.

The cross-validation sweep, the GSO-inflation study, and the
buffer-sharing policy ablation.
"""

from repro.experiments import (
    ablation_policies,
    crossval_fluid,
    gso_inflation,
    implication_placement,
)


def test_bench_crossval(benchmark, bench_ctx):
    result = benchmark.pedantic(crossval_fluid.run, args=(bench_ctx,), rounds=2)
    assert result.metric("max_gap") < 0.06


def test_bench_gso_inflation(benchmark, bench_ctx):
    result = benchmark(gso_inflation.run, bench_ctx)
    assert result.metric("peak_utilization_100us") > 1.0


def test_bench_policy_ablation(benchmark, bench_ctx):
    result = benchmark.pedantic(ablation_policies.run, args=(bench_ctx,), rounds=2)
    assert "spread_loss_dynamic-threshold" in result.metrics


def test_bench_placement_metrics(benchmark, bench_ctx):
    result = benchmark(implication_placement.run, bench_ctx)
    assert "spearman_burst_risk" in result.metrics
