"""Benchmark — Figure 16: loss rate vs maximum burst contention per rack class.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig16_contention_loss as experiment


def test_bench_fig16(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("typical_loss_at_contention_le5") >= 0
