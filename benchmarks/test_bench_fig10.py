"""Benchmark — Figure 10: distinct-task distributions per rack class.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig10_task_diversity as experiment


def test_bench_fig10(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    # At benchmark scale the contention-based class split is noisy;
    # just check both medians were computed.
    assert result.metric("median_tasks_RegA-Typical") > 0
    assert result.metric("median_tasks_RegA-High") > 0
