"""Benchmark — Figure 7: burst-length distributions (all/contended/non-contended).

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig07_burst_length as experiment


def test_bench_fig07(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert 1 <= result.metric("median_length_ms") <= 5
