"""Benchmark — Figure 6: burst-frequency CDF over all RegA server runs.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig06_burst_frequency as experiment


def test_bench_fig06(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("median_bursts_per_sec") > 0
