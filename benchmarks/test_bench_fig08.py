"""Benchmark — Figure 8: connection counts inside vs outside bursts.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig08_connections as experiment


def test_bench_fig08(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("median_ratio") > 1.0
