"""Benchmarks — fabric layer and the fabric-smoothing experiment."""

from repro.experiments import fabric_smoothing
from repro.simnet.fabric import build_pod
from repro.simnet.tcp import DctcpControl, open_connection


def test_bench_cross_rack_transfer(benchmark):
    """A 1 MB DCTCP transfer across the fabric (4 hops)."""

    def run():
        pod = build_pod(racks=2, servers_per_rack=2)
        sender, _ = open_connection(
            pod.racks[0].hosts[0], pod.racks[1].hosts[0], DctcpControl(mss=1448)
        )
        sender.send(1_000_000)
        pod.engine.run_until(1.0)
        return sender

    sender = benchmark.pedantic(run, rounds=5, iterations=1)
    assert sender.done


def test_bench_fabric_smoothing(benchmark, bench_ctx):
    result = benchmark.pedantic(fabric_smoothing.run, args=(bench_ctx,), rounds=3)
    assert result.metric("span_stretch") > 1.0
