"""Benchmarks — the substrates themselves.

Dataset generation throughput (the cost of a region-day), the fluid
buffer model step rate, and the packet-level simulator event rate.
These bound how far the experiment scale can be pushed.
"""

import numpy as np

from repro import units
from repro.config import FleetConfig
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.dataset import generate_region_dataset
from repro.fleet.rackrun import RackRunSynthesizer
from repro.simnet.tcp import DctcpControl, open_connection
from repro.simnet.topology import build_rack
from repro.workload.region import REGION_A, build_region_workloads

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL


def test_bench_fluid_buffer_model(benchmark):
    """One 92-server, 1850-bucket fluid run (the per-rack-run kernel)."""
    model = FluidBufferModel(servers=92)
    rng = np.random.default_rng(0)
    demand = rng.exponential(0.15 * DRAIN, (1850, 92))
    demand[rng.random((1850, 92)) < 0.02] = 2.0 * DRAIN
    persistence = np.full(92, 0.05)

    result = benchmark(model.run, demand, persistence)
    assert result.total_delivered > 0


def test_bench_rack_run_synthesis(benchmark):
    """Full synthesis of one SyncMillisampler rack run (demand + fluid
    model + sketch noise + assembly)."""
    rng = np.random.default_rng(1)
    workload = build_region_workloads(REGION_A, racks=1, rng=rng)[0]
    synthesizer = RackRunSynthesizer()

    def run():
        return synthesizer.synthesize(workload, hour=6, rng=np.random.default_rng(2))

    sync_run = benchmark(run)
    assert sync_run.servers == 92


def test_bench_region_dataset_generation(benchmark):
    """Generating and reducing a miniature region-day."""
    config = FleetConfig(racks_per_region=4, runs_per_rack=2, seed=3)

    def run():
        return generate_region_dataset(REGION_A, config)

    dataset = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(dataset.summaries) == 8


def test_bench_packet_sim_tcp_transfer(benchmark):
    """Packet-level simulator throughput: a 1 MB DCTCP transfer."""

    def run():
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448))
        sender.send(1_000_000)
        rack.engine.run_until(1.0)
        return sender

    sender = benchmark.pedantic(run, rounds=5, iterations=1)
    assert sender.done
