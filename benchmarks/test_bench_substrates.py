"""Benchmarks — the substrates themselves.

Dataset generation throughput (the cost of a region-day), the fluid
buffer model step rate, and the packet-level simulator event rate.
These bound how far the experiment scale can be pushed.
"""

import time

import numpy as np

from repro import units
from repro.config import FleetConfig
from repro.core.millisampler import (
    Direction,
    Millisampler,
    PacketObservation,
)
from repro.core.run import RunMetadata
from repro.core.sketch import hash_flow_keys
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.dataset import generate_region_dataset
from repro.fleet.rackrun import RackRunSynthesizer
from repro.simnet.tcp import DctcpControl, open_connection
from repro.simnet.topology import build_rack
from repro.workload.region import REGION_A, build_region_workloads

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL


def test_bench_fluid_buffer_model(benchmark):
    """One 92-server, 1850-bucket fluid run (the per-rack-run kernel)."""
    model = FluidBufferModel(servers=92)
    rng = np.random.default_rng(0)
    demand = rng.exponential(0.15 * DRAIN, (1850, 92))
    demand[rng.random((1850, 92)) < 0.02] = 2.0 * DRAIN
    persistence = np.full(92, 0.05)

    result = benchmark(model.run, demand, persistence)
    assert result.total_delivered > 0


def test_bench_fluid_batch(benchmark):
    """The batched fluid kernel vs the same runs through the serial
    loop.  One (8, 1850, 92) run_batch call amortizes the Python-level
    time loop across the whole batch; the asserted floor is the ISSUE's
    acceptance bar, well under the measured ~4x."""
    runs, buckets, servers = 8, 1850, 92
    model = FluidBufferModel(servers=servers)
    rng = np.random.default_rng(0)
    demand = rng.exponential(0.15 * DRAIN, (runs, buckets, servers))
    demand[rng.random((runs, buckets, servers)) < 0.02] = 2.0 * DRAIN
    persistence = np.full((runs, servers), 0.05)

    start = time.perf_counter()
    serial = [model.run(demand[r], persistence[r]) for r in range(runs)]
    serial_s = time.perf_counter() - start

    batch = benchmark(model.run_batch, demand, persistence)
    batch_s = benchmark.stats.stats.mean

    assert all(
        np.array_equal(batch.per_run(r).delivered, serial[r].delivered)
        for r in range(runs)
    )
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["speedup"] = serial_s / batch_s
    assert serial_s / batch_s >= 2.0


def test_bench_native_kernel(benchmark):
    """The native (numba-jitted) fluid kernel vs the numpy batch oracle.

    Skipped where numba is not installed (``pip install .[native]``);
    the CI with-numba leg runs it with ``--require`` so the gate cannot
    silently vanish there.  The asserted floor is the ISSUE's
    acceptance bar: >=5x over the numpy ``run_batch`` on the same
    (16, 1850, 40) batch, outputs bit-identical."""
    import pytest

    from repro.fleet.kernels import NATIVE_AVAILABLE, warm_kernels

    if not NATIVE_AVAILABLE:
        pytest.skip("numba not installed; native kernel unavailable")

    runs, buckets, servers = 16, 1850, 40
    rng = np.random.default_rng(0)
    demand = rng.exponential(0.15 * DRAIN, (runs, buckets, servers))
    demand[rng.random((runs, buckets, servers)) < 0.02] = 2.0 * DRAIN
    persistence = np.full((runs, servers), 0.05)

    numpy_model = FluidBufferModel(servers=servers, kernel="numpy")
    native_model = FluidBufferModel(servers=servers, kernel="native")
    assert native_model.effective_kernel == "native"
    compile_s = warm_kernels()

    start = time.perf_counter()
    oracle = numpy_model.run_batch(demand, persistence)
    numpy_s = time.perf_counter() - start

    native = benchmark(native_model.run_batch, demand, persistence)
    native_s = benchmark.stats.stats.mean

    assert np.array_equal(native.delivered, oracle.delivered)
    assert np.array_equal(native.rate_multiplier, oracle.rate_multiplier)
    benchmark.extra_info["numpy_s"] = numpy_s
    benchmark.extra_info["compile_s"] = compile_s
    benchmark.extra_info["speedup"] = numpy_s / native_s
    assert numpy_s / native_s >= 5.0


def test_bench_policy_batch(benchmark):
    """The batched fluid kernel across the non-DT sharing-policy zoo.

    Every registered policy advertises a vectorized ``limits`` kernel
    (``batch_limits``); this gate keeps that promise honest by timing
    each non-DT policy's ``run_batch`` against the DT reference batch
    and asserting it stays within 2x — a policy silently degrading to
    the per-run fallback loop costs far more than that.  The tracked
    benchmark time is the whole zoo sweep."""
    from repro.fleet.policies import build_policy, registered_policy_specs

    runs, buckets, servers = 4, 600, 92
    rng = np.random.default_rng(0)
    demand = rng.exponential(0.15 * DRAIN, (runs, buckets, servers))
    demand[rng.random((runs, buckets, servers)) < 0.02] = 2.0 * DRAIN
    persistence = np.full((runs, servers), 0.05)
    specs = registered_policy_specs()
    queues_per_quadrant = -(-servers // units.NUM_QUADRANTS)
    models = {
        spec.name: FluidBufferModel(
            servers=servers,
            policy=build_policy(spec, queues_per_quadrant=queues_per_quadrant),
        )
        for spec in specs
    }

    def best_of(name, rounds=3):
        model = models[name]
        model.run_batch(demand, persistence)  # warm
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            result = model.run_batch(demand, persistence)
            times.append(time.perf_counter() - start)
        assert result.delivered.sum() > 0
        return min(times)

    dt_s = best_of("dynamic-threshold")
    benchmark.extra_info["dt_batch_s"] = dt_s
    for spec in specs[1:]:
        ratio = best_of(spec.name) / dt_s
        benchmark.extra_info[f"ratio_{spec.name}"] = ratio
        assert ratio <= 2.0, (
            f"{spec.name} batch kernel at {ratio:.2f}x of the DT batch "
            f"(bound 2x): its limits kernel has likely fallen off the "
            f"vectorized path"
        )

    def sweep():
        for spec in specs[1:]:
            models[spec.name].run_batch(demand, persistence)

    benchmark.pedantic(sweep, rounds=3, iterations=1)


def test_bench_sampler_observe_batch(benchmark):
    """100k packets through observe_batch vs the scalar observe loop."""
    count = 100_000
    rng = np.random.default_rng(4)
    times = np.sort(rng.uniform(0, 1.7, count))
    sizes = rng.integers(0, 65536, count)
    directions = rng.random(count) < 0.6
    cpus = rng.integers(0, 8, count)
    ecn = rng.random(count) < 0.1
    retx = rng.random(count) < 0.05
    keys = rng.integers(0, 500, count)
    flow_bits = hash_flow_keys(keys)

    def make_sampler():
        sampler = Millisampler(RunMetadata(host="bench"), buckets=1850, cpus=8)
        sampler.attach()
        sampler.enable()
        return sampler

    scalar = make_sampler()
    observations = [
        PacketObservation(
            time=float(times[i]),
            direction=Direction.INGRESS if directions[i] else Direction.EGRESS,
            size=int(sizes[i]),
            flow_key=int(keys[i]),
            cpu=int(cpus[i]),
            ecn_marked=bool(ecn[i]),
            retransmit=bool(retx[i]),
        )
        for i in range(count)
    ]
    start = time.perf_counter()
    for obs in observations:
        scalar.observe(obs)
    scalar_s = time.perf_counter() - start

    def run_batch():
        sampler = make_sampler()
        sampler.observe_batch(
            times, sizes, directions, cpus, ecn, retx, flow_bits=flow_bits
        )
        return sampler

    batched = benchmark(run_batch)
    batch_s = benchmark.stats.stats.mean

    assert batched.stats.packets_processed == scalar.stats.packets_processed
    assert np.array_equal(batched._sketch_words, scalar._sketch_words)
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = scalar_s / batch_s
    assert scalar_s / batch_s >= 5.0


def test_bench_rack_run_synthesis(benchmark):
    """Full synthesis of one SyncMillisampler rack run (demand + fluid
    model + sketch noise + assembly)."""
    rng = np.random.default_rng(1)
    workload = build_region_workloads(REGION_A, racks=1, rng=rng)[0]
    synthesizer = RackRunSynthesizer()

    def run():
        return synthesizer.synthesize(workload, hour=6, rng=np.random.default_rng(2))

    sync_run = benchmark(run)
    assert sync_run.servers == 92


def test_bench_region_dataset_generation(benchmark):
    """Generating and reducing a miniature region-day."""
    config = FleetConfig(racks_per_region=4, runs_per_rack=2, seed=3)

    def run():
        return generate_region_dataset(REGION_A, config)

    dataset = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(dataset.summaries) == 8


def test_bench_region_generation_fluid_batching(benchmark):
    """End-to-end region-day generation with the batched fluid kernel
    vs the same pipeline forced to singleton batches (the serial
    kernel).  Bench scale matches the acceptance bar: 20 racks x 4
    runs, one worker."""

    def generate(fluid_batch):
        config = FleetConfig(
            racks_per_region=20, runs_per_rack=4, seed=11, fluid_batch=fluid_batch
        )
        return generate_region_dataset(REGION_A, config)

    start = time.perf_counter()
    serial = generate(fluid_batch=1)
    serial_s = time.perf_counter() - start

    dataset = benchmark.pedantic(generate, args=(FleetConfig().fluid_batch,), rounds=2)
    batch_s = benchmark.stats.stats.min

    assert len(dataset.summaries) == len(serial.summaries) == 80
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["speedup"] = serial_s / batch_s
    assert serial_s / batch_s >= 1.5


def test_bench_packet_sim_tcp_transfer(benchmark):
    """Packet-level simulator throughput: a 1 MB DCTCP transfer."""

    def run():
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448))
        sender.send(1_000_000)
        rack.engine.run_until(1.0)
        return sender

    sender = benchmark.pedantic(run, rounds=5, iterations=1)
    assert sender.done


def test_bench_shard_generation(benchmark, tmp_path):
    """Generating and writing one shard of the out-of-core region store
    (synthesis + columnar projection + atomic writes + hashing) — the
    unit of work a store-build worker executes.  The per-shard run
    throughput in extra_info is what the CI gate tracks."""
    from repro.fleet.shards import _write_shard, plan_region_shards, synthesize_shard
    from repro.obs.metrics import Metrics

    config = FleetConfig(racks_per_region=4, runs_per_rack=3, seed=7)
    _plans, tasks = plan_region_shards(REGION_A, config, shard_racks=4, shard_hours=24)
    (task,) = tasks
    synthesizer = RackRunSynthesizer()

    def run():
        metrics = Metrics()
        summaries = synthesize_shard(task, config, synthesizer, metrics=metrics)
        return _write_shard(str(tmp_path), task, summaries, metrics)

    record = benchmark.pedantic(run, rounds=3, iterations=1)
    assert record["runs"] == task.total_runs == 12
    benchmark.extra_info["runs_per_shard"] = record["runs"]
    benchmark.extra_info["runs_per_s"] = record["runs"] / benchmark.stats.stats.mean


def test_bench_streaming_merge(benchmark):
    """Merging shard-level streaming partials into figure aggregates
    (Table 1 + rack profiles + run contention) — the reduce side of the
    out-of-core pipeline, pure numpy over columnar blocks."""
    from repro.analysis.streaming import (
        RackProfileAccumulator,
        RunContentionAccumulator,
        Table1Accumulator,
    )

    rng = np.random.default_rng(3)
    shards = 16
    runs_per_shard = 512
    blocks = []
    for shard in range(shards):
        racks = np.array(
            [f"RegA-rack{index:04d}" for index in rng.integers(0, 200, runs_per_shard)]
        )
        blocks.append(
            {
                "racks": racks,
                "hours": rng.integers(0, 24, runs_per_shard),
                "servers": rng.integers(60, 92, runs_per_shard),
                "bursty": rng.integers(0, 40, runs_per_shard),
                "n_bursts": rng.integers(0, 300, runs_per_shard),
                "mean": rng.exponential(1.0, runs_per_shard),
                "discard": rng.exponential(1e6, runs_per_shard),
                "ingress": rng.exponential(1e9, runs_per_shard),
                "tasks": rng.integers(1, 6, runs_per_shard),
                "share": rng.uniform(0.3, 1.0, runs_per_shard),
                "coloc": rng.random(runs_per_shard) < 0.5,
                "min_active": rng.exponential(1.0, runs_per_shard),
                "p90": rng.exponential(2.0, runs_per_shard),
            }
        )

    def run():
        table1 = Table1Accumulator("RegA")
        profiles = RackProfileAccumulator()
        contention = RunContentionAccumulator()
        for block in blocks:
            t_part = Table1Accumulator("RegA")
            t_part.add_columns(
                block["racks"], block["servers"], block["bursty"], block["n_bursts"]
            )
            table1.merge(t_part)
            p_part = RackProfileAccumulator()
            p_part.add_columns(
                "RegA", block["racks"], block["hours"], block["mean"],
                block["discard"], block["ingress"], block["tasks"],
                block["share"], block["coloc"],
            )
            profiles.merge(p_part)
            c_part = RunContentionAccumulator()
            c_part.add_columns(
                block["racks"], block["hours"], block["min_active"], block["p90"]
            )
            contention.merge(c_part)
        return table1.finalize(), profiles.finalize(), contention.finalize()

    row, rack_list, view = benchmark(run)
    assert row.runs == shards * runs_per_shard
    assert view.total == shards * runs_per_shard
    assert len(rack_list) == 200
    benchmark.extra_info["rows_per_s"] = row.runs / benchmark.stats.stats.mean


def test_bench_shm_transfer(benchmark, tmp_path):
    """Rack-day result transport: columnar shared-memory slots vs the
    pickled result pipe.

    The pickled path pays serialize + byte-copy + deserialize for every
    RunSummary object graph; the shm path writes float64 columns into a
    preallocated segment and rebuilds the objects from the plan the
    parent already holds.  Both directions are timed (encode+decode vs
    dumps+loads) and the decoded rack-day must be value-identical to
    the pickled round-trip."""
    import dataclasses
    import math
    import pickle
    from multiprocessing import shared_memory

    from repro.fleet.dataset import plan_region, synthesize_rack_day
    from repro.fleet.shm import decode_rack_day, encode_rack_day, plan_slot_layout

    config = FleetConfig(racks_per_region=1, runs_per_rack=8, seed=11)
    (plan,) = plan_region(REGION_A, config)
    summaries = synthesize_rack_day(plan, config, RackRunSynthesizer())
    layout = plan_slot_layout([plan])
    segment = shared_memory.SharedMemory(create=True, size=layout.slot_bytes)

    def comparable(obj):
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {
                f.name: comparable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        if isinstance(obj, float):
            return "nan" if math.isnan(obj) else obj
        if isinstance(obj, (list, tuple)):
            return [comparable(value) for value in obj]
        if isinstance(obj, dict):
            return {key: comparable(value) for key, value in obj.items()}
        return obj

    start = time.perf_counter()
    rounds = 20
    for _ in range(rounds):
        pickled = pickle.loads(pickle.dumps(summaries, pickle.HIGHEST_PROTOCOL))
    pickle_s = (time.perf_counter() - start) / rounds

    def run():
        counts = encode_rack_day(summaries, *layout.slot_arrays(segment.buf, 0))
        return decode_rack_day(plan, counts, *layout.slot_arrays(segment.buf, 0))

    try:
        decoded = benchmark.pedantic(run, rounds=20, iterations=1)
        shm_s = benchmark.stats.stats.mean
        assert [comparable(s) for s in decoded] == [comparable(s) for s in pickled]
        benchmark.extra_info["pickle_s"] = pickle_s
        benchmark.extra_info["runs"] = len(summaries)
        benchmark.extra_info["speedup"] = pickle_s / shm_s
        # Parity floor: the codec must never cost more than the pickle
        # round-trip it replaces (measured ~1.3x faster; the production
        # win is larger still, since shm also skips the result-pipe
        # byte copy that dumps/loads cannot model in-process).
        assert pickle_s / shm_s >= 0.9
    finally:
        segment.close()
        segment.unlink()


def test_bench_serve_latency(benchmark, bench_ctx):
    """Warm-path query latency of the ``repro serve`` core: one table1
    stream against a memoized dataset — flight setup, event replay, and
    result serialization, no generation."""
    from repro.service.core import Query, QueryService, ServiceConfig

    service = QueryService(
        ServiceConfig(
            fleet=bench_ctx.fleet,
            cache_dir=bench_ctx.cache_dir,
            request_threads=1,
        )
    )
    try:
        query = Query(kind="table1", region="RegA")
        warm = list(service.stream(query))  # builds the memo (cache hit)
        assert warm[-1]["event"] == "result"

        def run():
            return list(service.stream(query))

        events = benchmark.pedantic(run, rounds=10, iterations=1)
        assert events[-1] == warm[-1]
        assert events[0]["coalesced"] is False
        benchmark.extra_info["queries_per_s"] = 1.0 / benchmark.stats.stats.mean
    finally:
        service.shutdown()
