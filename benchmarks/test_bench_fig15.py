"""Benchmark — Figure 15: within-run contention variation and buffer-share drop.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig15_run_variation as experiment


def test_bench_fig15(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert 0 < result.metric("median_share_drop") < 1
