"""Benchmark — Table 2: per-class burst/contended/lossy accounting.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import table2_burst_summary as experiment


def test_bench_table2(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.metric("loss_inversion_ratio") > 1.0
