"""Benchmark — Figure 17: normalized switch discards by rack class.

Regenerates the paper artifact on the cached benchmark dataset and
reports how long the analysis takes.
"""

from repro.experiments import fig17_switch_discards as experiment


def test_bench_fig17(benchmark, bench_ctx):
    result = benchmark(experiment.run, bench_ctx)
    assert result.series
