#!/usr/bin/env python3
"""Buffer-sharing ablation: how the dynamic-threshold alpha trades off
loss against fairness (the Section 9 "buffer sharing algorithms"
implication).

Replays the same rack workload through the fluid buffer model with
alpha in {0.25, 0.5, 1, 2, 4}, separately for a low-contention
(spread) and a high-contention (ML co-located) rack, and reports loss
per class — quantifying the paper's suggestion that "a relatively
small set of configurations — say one each for low contention and high
contention regimes — appear sufficient".

Run:  python examples/alpha_tuning_study.py
"""

import numpy as np

from repro.config import BufferConfig
from repro.fleet.buffermodel import FluidBufferModel
from repro.fleet.demand import DemandModel
from repro.viz.table import render_table
from repro.workload.region import REGION_A, build_region_workloads

ALPHAS = (0.25, 0.5, 1.0, 2.0, 4.0)


def loss_for_alpha(workload, alpha: float, seeds=range(4)) -> tuple[float, float]:
    """(loss per mille of offered bytes, p99 queue in KB) for one rack
    workload under a given alpha."""
    lost = offered = 0.0
    occupancies = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        demand_model = DemandModel()
        demand = demand_model.generate(workload, hour=6, buckets=1500, rng=rng)
        model = FluidBufferModel(
            servers=workload.placement.servers,
            buffer_config=BufferConfig(alpha=alpha),
        )
        result = model.run(
            demand.demand, demand.persistence,
            demand.initial_multiplier, demand.initial_alpha,
        )
        lost += result.dropped.sum()
        offered += demand.demand.sum()
        occupancies.append(np.percentile(result.queue_occupancy, 99))
    return lost / offered * 1000, float(np.mean(occupancies)) / 1024


def main() -> None:
    print(__doc__)
    rng = np.random.default_rng(3)
    workloads = build_region_workloads(REGION_A, racks=12, rng=rng)
    spread = next(w for w in workloads if not w.colocated)
    colocated = next(w for w in workloads if w.colocated)

    rows = []
    for alpha in ALPHAS:
        spread_loss, spread_q = loss_for_alpha(spread, alpha)
        coloc_loss, coloc_q = loss_for_alpha(colocated, alpha)
        rows.append(
            [
                alpha,
                f"{spread_loss:.3f}",
                f"{spread_q:.0f}",
                f"{coloc_loss:.3f}",
                f"{coloc_q:.0f}",
            ]
        )
    print(
        render_table(
            ["alpha", "spread loss (‰)", "spread p99 q (KB)",
             "coloc loss (‰)", "coloc p99 q (KB)"],
            rows,
            title="Dynamic-threshold alpha sweep, per rack class",
        )
    )
    print(
        "\nLarger alpha gives each queue a bigger share — it absorbs the\n"
        "fresh-sender bursts of low-contention racks, but on a densely\n"
        "contended rack it lets early queues crowd the pool, making the\n"
        "per-queue limit *more* variable.  The optimum differs by rack\n"
        "class, supporting per-class buffer configurations (Section 9)."
    )


if __name__ == "__main__":
    main()
