#!/usr/bin/env python3
"""Incast study: how fan-in degree drives loss in the shared rack buffer.

Sweeps the number of synchronized senders into one receiver on the
packet-level simulator (paper-default ToR: 3.6 MB shared quadrant,
alpha = 1, 120 KB ECN threshold) and reports switch discards, ECN
marks, retransmissions, and completion time — the "heavy incast"
problem Section 3 describes, and the mechanism behind Figure 19.

Run:  python examples/incast_loss_study.py
"""

import numpy as np

from repro import units
from repro.simnet.topology import build_rack
from repro.viz.table import render_table
from repro.workload.flows import IncastApp


def run_incast(fanin: int, bytes_per_sender: int = 400_000) -> dict:
    rack = build_rack(servers=fanin + 1, rng=np.random.default_rng(fanin))
    results = {}

    def record(result):
        results["finish"] = result.finish_time

    app = IncastApp(
        senders=rack.hosts[1:],
        receiver=rack.hosts[0],
        bytes_per_sender=bytes_per_sender,
        initial_cwnd_segments=40,
        segment_bytes=8 * 1024,
        on_complete=record,
    )
    app.start(at_time=0.01)
    rack.engine.run_until(5.0)

    counters = rack.switch.counters
    total_retx = sum(sender.retransmissions for sender, _ in app.connections)
    total_timeouts = sum(sender.timeouts for sender, _ in app.connections)
    return {
        "fanin": fanin,
        "completed": app.result.completed,
        "discard_kb": counters.discard_bytes / 1024,
        "ecn_mb": counters.ecn_marked_bytes / units.MB,
        "retransmissions": total_retx,
        "timeouts": total_timeouts,
        "finish_ms": (results.get("finish", float("nan")) - 0.01) * 1e3,
    }


def main() -> None:
    print(__doc__)
    rows = []
    for fanin in (2, 4, 8, 16, 32, 64):
        outcome = run_incast(fanin)
        rows.append(
            [
                outcome["fanin"],
                outcome["completed"],
                f"{outcome['finish_ms']:.1f}",
                f"{outcome['ecn_mb']:.2f}",
                f"{outcome['discard_kb']:.0f}",
                outcome["retransmissions"],
                outcome["timeouts"],
            ]
        )
    print(
        render_table(
            ["fan-in", "done", "finish (ms)", "ECN-marked (MB)",
             "discards (KB)", "retx", "RTOs"],
            rows,
            title="Synchronized incast into one 12.5 Gbps server queue",
        )
    )
    print(
        "\nDCTCP absorbs small fan-in via ECN; past the point where the\n"
        "aggregate initial windows exceed the dynamic-threshold share,\n"
        "the buffer overflows before feedback lands — packet loss and\n"
        "retransmission timeouts, exactly the regime Figure 19 maps."
    )


if __name__ == "__main__":
    main()
