#!/usr/bin/env python3
"""Region-scale contention study on the fleet model.

Generates a small synthetic region-day per the paper's Section 5 setup
(SyncMillisampler runs across racks, 1 ms sampling), then walks the
Section 7 analysis: contention across racks, its persistence over the
day, and the per-run buffer-share swings — printing CDFs and the
headline statistics next to the paper's numbers.

Run:  python examples/contention_study.py [racks-per-region]
"""

import sys

import numpy as np

from repro.analysis.contention import buffer_share_drop
from repro.analysis.racks import classify_racks, rack_profiles, RackClass
from repro.config import FleetConfig
from repro.fleet.dataset import generate_region_dataset
from repro.viz.ascii import ascii_cdf
from repro.workload.region import REGION_A


def main() -> None:
    racks = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    config = FleetConfig(racks_per_region=racks, runs_per_rack=8, seed=42)
    print(f"Generating RegA: {racks} racks x {config.runs_per_rack} runs "
          f"(92 servers each, ~1.85 s at 1 ms)...")
    dataset = generate_region_dataset(REGION_A, config)
    print(f"  {len(dataset.summaries)} rack runs, "
          f"{sum(len(s.bursts) for s in dataset.summaries):,} bursts\n")

    # --- Figure 9 view: contention across racks --------------------------
    profiles = rack_profiles(dataset.summaries)
    contention = np.array([p.mean_contention for p in profiles])
    print(ascii_cdf(
        {"RegA racks": contention},
        x_label="day-mean avg contention",
        title="Average contention across racks (cf. Figure 9: bimodal)",
        height=12,
    ))

    classes = classify_racks(profiles)
    typical = classes[RackClass.TYPICAL]
    high = classes[RackClass.HIGH]
    print(f"\nRack classes: {len(typical)} typical, {len(high)} high "
          f"(paper: 80% / 20%)")
    if high:
        gap = np.mean([p.mean_contention for p in high]) / max(
            np.mean([p.mean_contention for p in typical]), 1e-9
        )
        print(f"High-to-typical contention gap: {gap:.1f}x (paper 3.4x)")
        ml_dense = sum(1 for p in high if p.dominant_share >= 0.55)
        print(f"High racks with one task on >=55% of servers: "
              f"{ml_dense}/{len(high)} (paper: ML co-location)")

    # --- Figure 12 view: persistence over the day ------------------------
    if high:
        high_mins = min(p.min_contention for p in high)
        typical_p75 = np.percentile([p.mean_contention for p in typical], 75)
        print(f"\nPersistence: lowest run-average on any high rack is "
              f"{high_mins:.1f}, vs typical-rack p75 {typical_p75:.1f} — "
              f"{'non-overlapping' if high_mins > typical_p75 else 'overlapping'} "
              f"(paper: well separated)")

    # --- Figure 15 view: within-run buffer swings -------------------------
    drops = []
    for summary in dataset.summaries:
        if summary.contention.has_activity:
            drops.append(
                buffer_share_drop(
                    summary.contention.min_active, summary.contention.p90
                )
            )
    drops_arr = np.array(drops)
    print(f"\nPer-run buffer-share drop between calmest and p90 contention:")
    print(f"  median {np.median(drops_arr) * 100:.1f}% (paper 33.3%), "
          f">=70% drop in {np.mean(drops_arr >= 0.7) * 100:.1f}% of runs "
          f"(paper 15%)")


if __name__ == "__main__":
    main()
