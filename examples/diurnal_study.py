#!/usr/bin/env python3
"""Diurnal study: how contention tracks the daily load curve (Section 7.2).

Generates a compact RegA day, classifies racks, and renders the hourly
contention box plots of Figure 13 plus the contention-vs-volume
relationship of Figure 14 — showing that diurnal effects are real but
secondary to placement (the same racks stay high or low all day).

Run:  python examples/diurnal_study.py [racks]
"""

import sys

import numpy as np

from repro.analysis.diurnal import hourly_box_stats, peak_window_increase, hourly_means
from repro.analysis.racks import RackClass, classify_racks, rack_profiles
from repro.analysis.stats import pearson_correlation
from repro.config import FleetConfig
from repro.fleet.dataset import generate_region_dataset
from repro.viz.ascii import ascii_boxplot
from repro.workload.region import REGION_A


def main() -> None:
    racks = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    config = FleetConfig(racks_per_region=racks, runs_per_rack=10, seed=11)
    print(f"Generating a RegA day: {racks} racks x 10 runs...")
    dataset = generate_region_dataset(REGION_A, config)

    profiles = rack_profiles(dataset.summaries)
    classes = classify_racks(profiles)
    high_racks = {p.rack for p in classes[RackClass.HIGH]}
    print(f"{len(high_racks)} high-contention racks "
          f"of {len(profiles)} (paper: ~20%)\n")

    if high_racks:
        boxes = hourly_box_stats(dataset.summaries, racks=high_racks)
        print(ascii_boxplot(
            {f"h{hour:02d}": stats for hour, stats in boxes.items()},
            title="RegA-High: contention by hour (cf. Figure 13 top)",
        ))
        means = hourly_means(dataset.summaries, racks=high_racks)
        try:
            increase = peak_window_increase(means, window=(4, 10))
            print(f"\nhours 4-10 vs rest: {increase * +100:.1f}% "
                  f"(paper: +27.6%)")
        except Exception:
            pass

    # Figure 14: contention vs per-minute ingress volume.
    volumes = []
    contentions = []
    for summary in dataset.summaries:
        if summary.duration_s > 0:
            volumes.append(summary.switch_ingress_bytes / summary.duration_s * 60)
            contentions.append(summary.contention.mean)
    r = pearson_correlation(volumes, contentions)
    print(f"\ncontention vs per-minute rack ingress: Pearson r = {r:.2f} "
          f"(paper: clear but loose positive correlation)")

    # Persistence: the paper's larger point.
    if high_racks:
        high_mins = [p.min_contention for p in classes[RackClass.HIGH]]
        typical_means = [p.mean_contention for p in classes[RackClass.TYPICAL]]
        print(f"\npersistence: min run-average on high racks "
              f"{min(high_mins):.1f} vs typical-rack p75 "
              f"{np.percentile(typical_means, 75):.1f} — diurnal swings do "
              f"not move racks between classes (Figure 12).")


if __name__ == "__main__":
    main()
