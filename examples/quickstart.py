#!/usr/bin/env python3
"""Quickstart: sample real (simulated) traffic with Millisampler.

Builds a 4-server rack behind a shared-buffer ToR, runs a DCTCP
transfer and a synchronized incast through it, collects a rack-wide
SyncMillisampler run, and prints what the sampler saw — the full
Section 4 pipeline in ~60 lines of API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import units
from repro.analysis import detect_run_bursts, summarize_run
from repro.config import SamplerConfig
from repro.core.syncsampler import SyncMillisampler
from repro.simnet.topology import build_rack
from repro.simnet.tcp import DctcpControl, open_connection
from repro.viz.ascii import sparkline
from repro.workload.flows import BackgroundTrickle, IncastApp


def main() -> None:
    # A rack: 4 hosts, ToR with dynamic-threshold shared buffer, each
    # host carrying a Millisampler (1 ms x 400 buckets here).
    sampler_config = SamplerConfig(buckets=400, cpus=4)
    rack = build_rack(servers=4, sampler_config=sampler_config,
                      rng=np.random.default_rng(7))

    # Background traffic keeps every sampler's run clock honest.
    BackgroundTrickle(rack.hosts).start()

    # Schedule a rack-synchronous collection 1.2 s from now.
    sync = SyncMillisampler()
    start_at = 3 * sampler_config.duration
    sync_id = sync.request_collection(
        rack.sampled_hosts, rack.name, "RegA", start_at, now=0.0
    )

    # Traffic: a bulk DCTCP transfer plus a 3-way incast mid-window.
    sender, _ = open_connection(rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448))
    rack.engine.at(start_at + 0.05, lambda: sender.send(4_000_000))
    incast = IncastApp(rack.hosts[1:4], rack.hosts[0], bytes_per_sender=500_000)
    incast.start(at_time=start_at + 0.15)

    # Drive the simulation, polling the user-space sampler agents.
    end = start_at + sampler_config.duration + 0.2
    tick = 0
    while rack.engine.now < end:
        rack.engine.run_until(min(tick * 5e-3, end))
        rack.poll_samplers()
        tick += 1
    rack.poll_samplers()

    # Assemble: trim to the common window, align onto one time base.
    sync_run = sync.assemble(sync_id)
    print(f"SyncMillisampler run: {sync_run.servers} servers x "
          f"{sync_run.buckets} x 1 ms buckets\n")
    for run in sync_run.runs:
        gbps = run.in_bytes / sync_run.sampling_interval * 8 / 1e9
        print(f"  {run.meta.host}  ingress {sparkline(gbps[:120])}  "
              f"peak {gbps.max():.1f} Gbps")

    # Analysis: bursts, contention, loss — the Section 5-8 pipeline.
    summary = summarize_run(sync_run)
    bursts = detect_run_bursts(sync_run)
    print(f"\nDetected {len(bursts)} bursts; "
          f"avg contention {summary.contention.mean:.2f}, "
          f"p90 {summary.contention.p90:.0f}")
    for burst in bursts[:8]:
        host = sync_run.runs[burst.server].meta.host
        print(f"  {host}: {burst.length} ms, {burst.volume / units.MB:.2f} MB, "
              f"max contention {burst.max_contention}, "
              f"{'LOSSY' if burst.lossy else 'clean'}")


if __name__ == "__main__":
    main()
