#!/usr/bin/env python3
"""Analyzing Millisampler dataset files (released-data workflow).

The paper's authors released an anonymized Millisampler dataset; this
example shows the exact workflow for analyzing it with this library:

1. point :func:`repro.io.load_rack_directory` at a directory of
   NDJSON(.gz) host-record files (a ``FieldMap`` adapts any column
   naming — see ``repro/io/msdata.py``),
2. runs are trimmed and aligned exactly like live SyncMillisampler
   collections, and
3. the full Section 5-8 analysis pipeline applies unchanged.

Since the real download is not bundled, the example first *exports* a
small synthetic region in the same format and then analyzes it — swap
the directory for the real data and everything downstream is
identical.

Run:  python examples/released_data_pipeline.py [existing-data-dir]
"""

import sys
import tempfile

import numpy as np

from repro.analysis.stats import percentile
from repro.analysis.summary import summarize_run
from repro.fleet.rackrun import RackRunSynthesizer
from repro.io import load_rack_directory, write_sync_run
from repro.viz.ascii import ascii_cdf
from repro.workload.region import REGION_A, build_region_workloads


def export_stand_in(directory: str, racks: int = 6, runs_per_rack: int = 3) -> None:
    """Write a synthetic region slice in the released-data format."""
    rng = np.random.default_rng(1)
    synthesizer = RackRunSynthesizer()
    for workload in build_region_workloads(REGION_A, racks, rng):
        for hour in np.sort(rng.choice(24, size=runs_per_rack, replace=False)):
            write_sync_run(synthesizer.synthesize(workload, int(hour), rng), directory)
    print(f"(stand-in dataset exported to {directory})\n")


def main() -> None:
    if len(sys.argv) > 1:
        directory = sys.argv[1]
    else:
        directory = tempfile.mkdtemp(prefix="msdata-")
        export_stand_in(directory)

    sync_runs = load_rack_directory(directory)
    print(f"Loaded {len(sync_runs)} rack runs "
          f"({sum(r.servers for r in sync_runs)} host records)\n")

    summaries = [summarize_run(run) for run in sync_runs]
    bursts = [b for s in summaries for b in s.bursts]
    lengths = [b.length for b in bursts]
    contended = [b.length for b in bursts if b.contended]
    non_contended = [b.length for b in bursts if not b.contended]

    if non_contended and contended:
        print(ascii_cdf(
            {"all": lengths, "contended": contended, "non-contended": non_contended},
            x_label="burst length (ms)",
            title="Burst length distribution (cf. Figure 7)",
            height=12,
        ))

    lossy = sum(1 for b in bursts if b.lossy)
    print(f"\n{len(bursts)} bursts | median length "
          f"{percentile(lengths, 50):.0f} ms | "
          f"{len(contended) / len(bursts) * 100:.1f}% contended | "
          f"{lossy / len(bursts) * 100:.2f}% lossy")
    contention = [s.contention.mean for s in summaries]
    print(f"per-run average contention: median "
          f"{percentile(contention, 50):.2f}, p90 {percentile(contention, 90):.2f}")


if __name__ == "__main__":
    main()
